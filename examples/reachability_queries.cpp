// Reachability without decompression (Theorem 6): compress a graph,
// then answer (s,t)-reachability directly on the grammar and verify
// against BFS on the decompressed graph.
//
//   ./build/examples/reachability_queries

#include <chrono>
#include <cstdio>

#include "src/datasets/generators.h"
#include "src/graph/graph_algos.h"
#include "src/grepair/compressor.h"
#include "src/query/reachability.h"
#include "src/util/rng.h"

using namespace grepair;

int main() {
  // A workflow-like DAG of many similar stages: deep paths, heavy
  // repetition — exactly where the grammar both compresses well and
  // answers reachability fast.
  const uint32_t kStages = 400, kWidth = 3;
  Alphabet alphabet;
  Label next = alphabet.Add("next", 2);
  Label side = alphabet.Add("side", 2);
  Hypergraph graph(kStages * kWidth);
  for (uint32_t s = 0; s + 1 < kStages; ++s) {
    for (uint32_t w = 0; w < kWidth; ++w) {
      graph.AddSimpleEdge(s * kWidth + w, (s + 1) * kWidth + w, next);
    }
    graph.AddSimpleEdge(s * kWidth, s * kWidth + 1, side);
  }
  std::printf("pipeline graph: %u nodes, %u edges\n", graph.num_nodes(),
              graph.num_edges());

  auto result = Compress(graph, alphabet, {});
  const SlhrGrammar& grammar = result.value().grammar;
  std::printf("grammar: %u rules, height %u, |G|+|S| = %llu "
              "(%.1fx smaller than |g|)\n",
              grammar.num_rules(), grammar.Height(),
              static_cast<unsigned long long>(grammar.TotalSize()),
              static_cast<double>(graph.TotalSize()) / grammar.TotalSize());

  ReachabilityIndex index(grammar);
  auto derived = Derive(grammar);
  const Hypergraph& val = derived.value();

  Rng rng(5);
  int checked = 0, mismatches = 0, reachable = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 500; ++i) {
    uint64_t u = rng.UniformBounded(val.num_nodes());
    uint64_t v = rng.UniformBounded(val.num_nodes());
    bool on_grammar = index.Reachable(u, v);
    bool on_graph = DirectedReachable(val, static_cast<NodeId>(u))[v];
    ++checked;
    reachable += on_grammar;
    mismatches += on_grammar != on_graph;
  }
  auto t1 = std::chrono::steady_clock::now();
  std::printf("%d queries (%d reachable): %d mismatches vs BFS, "
              "%.1f us/query on the grammar\n",
              checked, reachable, mismatches,
              std::chrono::duration<double>(t1 - t0).count() * 1e6 / 500 /
                  2 /* grammar half of the loop */);
  return mismatches == 0 ? 0 : 1;
}
