// Compressor bake-off on one network graph: run every compressor in the
// repo on a co-authorship network and print the full comparison,
// including the parameters' effect (node order x maxRank grid).
//
//   ./build/examples/network_study

#include <cstdio>

#include "src/baselines/hn.h"
#include "src/baselines/k2_compressor.h"
#include "src/baselines/lm.h"
#include "src/baselines/string_repair.h"
#include "src/datasets/generators.h"
#include "src/encoding/grammar_coder.h"
#include "src/grepair/compressor.h"

using namespace grepair;

namespace {

double Bpe(size_t bytes, uint64_t edges) { return BitsPerEdge(bytes, edges); }

}  // namespace

int main() {
  GeneratedGraph g = CoAuthorship(3000, 4500, 7);
  uint64_t edges = g.graph.num_edges();
  std::printf("co-authorship network: %u nodes, %llu edges\n",
              g.graph.num_nodes(), static_cast<unsigned long long>(edges));

  // All compressors at their defaults.
  auto grepair = Compress(g.graph, g.alphabet, {});
  auto grepair_bytes = EncodeGrammar(grepair.value().grammar);
  std::printf("\n%-22s %10s %8s\n", "compressor", "bytes", "bpe");
  std::printf("%-22s %10zu %8.2f\n", "gRePair",
              grepair_bytes.size(), Bpe(grepair_bytes.size(), edges));
  size_t k2 = K2CompressedSize(g.graph, g.alphabet);
  std::printf("%-22s %10zu %8.2f\n", "k2-tree", k2, Bpe(k2, edges));
  auto lm = LmCompress(g.graph);
  std::printf("%-22s %10zu %8.2f\n", "LM (list merge)", lm.SizeBytes(),
              Bpe(lm.SizeBytes(), edges));
  auto hn = HnCompress(g.graph);
  std::printf("%-22s %10zu %8.2f   (%u dense patterns)\n",
              "HN (virtual nodes)", hn.SizeBytes(),
              Bpe(hn.SizeBytes(), edges), hn.patterns);
  size_t rp = AdjListRePairSizeBytes(g.graph);
  std::printf("%-22s %10zu %8.2f\n", "adj-list RePair", rp,
              Bpe(rp, edges));

  // Parameter grid for gRePair.
  std::printf("\ngRePair parameter grid (bpe):\n%-10s", "order\\rank");
  for (int rank : {2, 3, 4, 6}) std::printf(" %7d", rank);
  std::printf("\n");
  for (auto order : {NodeOrderKind::kNatural, NodeOrderKind::kFp0,
                     NodeOrderKind::kFp}) {
    std::printf("%-10s", NodeOrderKindName(order).c_str());
    for (int rank : {2, 3, 4, 6}) {
      CompressOptions options;
      options.node_order = order;
      options.max_rank = rank;
      auto r = Compress(g.graph, g.alphabet, options);
      auto bytes = EncodeGrammar(r.value().grammar);
      std::printf(" %7.2f", Bpe(bytes.size(), edges));
    }
    std::printf("\n");
  }
  return 0;
}
