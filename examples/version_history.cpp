// Version-graph scenario (Section IV-C3): archive yearly snapshots of
// an evolving collaboration network as one disjoint union and compress
// it, comparing against storing each snapshot separately.
//
//   ./build/examples/version_history

#include <cstdio>

#include "src/baselines/k2_compressor.h"
#include "src/datasets/generators.h"
#include "src/encoding/grammar_coder.h"
#include "src/grepair/compressor.h"
#include "src/query/speedup.h"

using namespace grepair;

int main() {
  const uint32_t kYears = 8;
  auto snapshots = CoAuthorshipHistory(kYears, 250, 120, 99);
  Alphabet alphabet;
  alphabet.Add("coauthor", 2);

  // Storing every snapshot separately (each as a k2-tree).
  size_t separate_bytes = 0;
  for (const auto& snap : snapshots) {
    separate_bytes += K2CompressedSize(snap, alphabet);
  }

  // Storing the union as one gRePair grammar: repeated substructure
  // across versions collapses into shared rules.
  std::vector<const Hypergraph*> parts;
  for (const auto& s : snapshots) parts.push_back(&s);
  GeneratedGraph archive = DisjointUnion(parts, alphabet, "archive");
  std::printf("archive of %u versions: %u nodes, %u edges\n", kYears,
              archive.graph.num_nodes(), archive.graph.num_edges());

  auto result = Compress(archive.graph, archive.alphabet, {});
  auto bytes = EncodeGrammar(result.value().grammar);
  size_t union_k2 = K2CompressedSize(archive.graph, alphabet);

  std::printf("per-snapshot k2-trees: %zu bytes\n", separate_bytes);
  std::printf("union as one k2-tree:  %zu bytes\n", union_k2);
  std::printf("union as gRePair:      %zu bytes (%u rules, %.2f bpe)\n",
              bytes.size(), result.value().grammar.num_rules(),
              BitsPerEdge(bytes.size(), archive.graph.num_edges()));

  // Sanity queries on the compressed archive (one pass, Section V):
  // each version is (at least) one connected component.
  uint64_t components =
      CountConnectedComponents(result.value().grammar);
  auto extrema = ComputeDegreeExtrema(result.value().grammar);
  if (!extrema.ok()) {
    std::fprintf(stderr, "%s\n", extrema.status().ToString().c_str());
    return 1;
  }
  std::printf("archive has %llu components; degrees span [%llu, %llu] "
              "— computed on the grammar without decompression\n",
              static_cast<unsigned long long>(components),
              static_cast<unsigned long long>(extrema.value().min_degree),
              static_cast<unsigned long long>(extrema.value().max_degree));
  return 0;
}
