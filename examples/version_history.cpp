// Version-graph scenario (Section IV-C3), served the GRSHARD3 way:
// keep ONE live compressed corpus and ship each update batch as a
// delta container instead of re-shipping the whole archive. The
// consumer opens base + deltas with api::OpenVersioned and sees the
// newest state; the bytes on the wire are the diff, not the corpus.
//
//   ./build/examples/version_history
//
// A mature co-authorship network is compressed once as a GRSHARD2
// base. Each "week" lands a small batch of new papers (2-4 author
// cliques) and a few retractions; the batch is applied through the
// overlay, encoded as v<i>.grs3 with BuildDelta, and compared against
// what a freshly recompressed re-ship of the corpus would cost. This
// is the regime deltas exist for: overlay runs cost ~12 raw bytes per
// edge against well under a byte per edge compressed, so a diff wins
// exactly while cumulative churn stays a few percent of the edge set.

#include <cstdio>
#include <filesystem>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "src/api/grepair_api.h"
#include "src/shard/delta_overlay.h"
#include "src/util/hashing.h"
#include "src/util/mmap_file.h"

using namespace grepair;

namespace {

using PairSet = std::set<std::pair<uint32_t, uint32_t>>;

PairSet Pairs(const Hypergraph& g) {
  PairSet pairs;
  for (const HEdge& e : g.edges()) {
    if (e.att.size() == 2) pairs.insert({e.att[0], e.att[1]});
  }
  return pairs;
}

}  // namespace

int main() {
  const uint32_t kWeeks = 4;
  GeneratedGraph gg = CoAuthorship(3000, 2500, 99);
  const uint32_t n = gg.graph.num_nodes();
  PairSet truth = Pairs(gg.graph);

  std::string dir = (std::filesystem::temp_directory_path() /
                     "grepair_version_history")
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "4");

  auto container_for = [&](const PairSet& pairs) -> std::vector<uint8_t> {
    Hypergraph g(n);
    for (const auto& p : pairs) g.AddSimpleEdge(p.first, p.second, 0);
    auto rep = codec->Compress(g, gg.alphabet, options);
    if (!rep.ok()) return {};
    return api::WrapCodecPayload(
        "sharded:grepair",
        dynamic_cast<shard::ShardedRep*>(rep.value().get())->SerializeV2());
  };

  // Week 0: compress once, ship the full container.
  auto base_bytes = container_for(truth);
  std::string base_path = dir + "/v0.grc";
  if (base_bytes.empty() ||
      !WriteFileBytesAtomic(base_path, SpanOf(base_bytes)).ok()) {
    std::fprintf(stderr, "cannot stage the base container\n");
    return 1;
  }
  std::printf("base: %u authors, %zu coauthor edges -> %zu-byte "
              "container, shipped once\n",
              n, truth.size(), base_bytes.size());

  std::mt19937_64 rng(2026);
  std::vector<std::string> chain;
  std::string prev_path = base_path;
  size_t delta_total = 0, reship_total = 0;
  for (uint32_t week = 1; week <= kWeeks; ++week) {
    // 10 new papers (each a clique over 2-4 existing authors) and 4
    // retracted collaborations.
    std::vector<shard::EdgeEdit> edits;
    for (int paper = 0; paper < 10; ++paper) {
      uint32_t authors = 2 + rng() % 3;
      std::vector<uint32_t> team;
      while (team.size() < authors) {
        uint32_t a = rng() % n;
        bool dup = false;
        for (uint32_t t : team) dup |= (t == a);
        if (!dup) team.push_back(a);
      }
      for (size_t i = 0; i < team.size(); ++i) {
        for (size_t j = i + 1; j < team.size(); ++j) {
          if (truth.insert({team[i], team[j]}).second) {
            edits.push_back(shard::EdgeEdit::Add(team[i], team[j], 0));
          }
        }
      }
    }
    std::vector<std::pair<uint32_t, uint32_t>> live(truth.begin(),
                                                    truth.end());
    for (int retraction = 0; retraction < 4; ++retraction) {
      auto p = live[rng() % live.size()];
      if (truth.erase(p)) {
        edits.push_back(shard::EdgeEdit::Delete(p.first, p.second));
      }
    }

    auto opened = api::OpenVersioned(base_path, chain);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    auto* sharded = dynamic_cast<shard::ShardedRep*>(opened.value().get());
    auto applied = sharded->ApplyEdits(edits);
    if (!applied.ok()) {
      std::fprintf(stderr, "%s\n", applied.ToString().c_str());
      return 1;
    }
    auto prev_file = MmapFile::Open(prev_path);
    if (!prev_file.ok()) {
      std::fprintf(stderr, "%s\n", prev_file.status().ToString().c_str());
      return 1;
    }
    ByteSpan span = prev_file.value()->span();
    auto delta = sharded->BuildDelta(HashBytes(span.data, span.size),
                                     span.size);
    if (!delta.ok()) {
      std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
      return 1;
    }
    auto delta_bytes = shard::EncodeDeltaContainer(delta.value());
    std::string delta_path = dir + "/v" + std::to_string(week) + ".grs3";
    auto wrote = WriteFileBytesAtomic(delta_path, SpanOf(delta_bytes));
    if (!wrote.ok()) {
      std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
      return 1;
    }
    chain.push_back(delta_path);
    prev_path = delta_path;

    size_t reship = container_for(truth).size();
    delta_total += delta_bytes.size();
    reship_total += reship;
    std::printf("week %u: %2zu edits -> %5zu-byte delta "
                "(re-ship would cost %zu bytes)\n",
                week, edits.size(), delta_bytes.size(), reship);
  }

  std::printf("weeks 1-%u totals: %zu delta bytes vs %zu re-ship bytes "
              "(%.1f%% of re-ship)\n",
              kWeeks, delta_total, reship_total,
              100.0 * (double)delta_total / (double)reship_total);

  // A consumer holding the base and the delta chain sees this week's
  // network, byte-exact against the ground truth.
  auto latest = api::OpenVersioned(base_path, chain);
  if (!latest.ok()) {
    std::fprintf(stderr, "%s\n", latest.status().ToString().c_str());
    return 1;
  }
  auto decoded = latest.value()->Decompress();
  if (!decoded.ok()) {
    std::fprintf(stderr, "%s\n", decoded.status().ToString().c_str());
    return 1;
  }
  bool agrees = Pairs(decoded.value()) == truth;
  std::printf("reopened base + %zu deltas: matches current truth: %s\n",
              chain.size(), agrees ? "yes" : "NO");

  std::filesystem::remove_all(dir);
  if (!agrees || delta_total >= reship_total) return 1;
  return 0;
}
