// RDF-graph compression scenario (Section IV-C2).
//
// Builds a DBpedia-style instance-types graph (a star forest: many
// subjects, few popular type objects), compresses it with gRePair and
// with the plain k^2-tree baseline, and answers triple-pattern queries
// (s type ?o / ?s type o) on both representations.
//
//   ./build/examples/rdf_compression

#include <cstdio>

#include "src/baselines/k2_compressor.h"
#include "src/datasets/generators.h"
#include "src/encoding/grammar_coder.h"
#include "src/grepair/compressor.h"
#include "src/query/neighborhood.h"

using namespace grepair;

int main() {
  // 40k instances over 40 types (Zipf popularity), like the paper's
  // DBpedia "mapping-based types" slices.
  GeneratedGraph rdf = RdfTypes(40000, 40, 2024);
  std::printf("RDF graph: %u nodes, %u triples\n", rdf.graph.num_nodes(),
              rdf.graph.num_edges());

  CompressOptions options;
  options.track_node_mapping = true;  // lets us query by original id
  auto result = Compress(rdf.graph, rdf.alphabet, options);
  auto bytes = EncodeGrammar(result.value().grammar);
  size_t k2_bytes = K2CompressedSize(rdf.graph, rdf.alphabet);
  std::printf("gRePair: %zu bytes (%.3f bpe)   k2-tree: %zu bytes "
              "(%.2f bpe)   -> %.0fx smaller\n",
              bytes.size(), BitsPerEdge(bytes.size(), rdf.graph.num_edges()),
              k2_bytes, BitsPerEdge(k2_bytes, rdf.graph.num_edges()),
              static_cast<double>(k2_bytes) / bytes.size());

  // Triple patterns over the *grammar* (no decompression). val(G) uses
  // its own node numbering; the tracked psi' mapping translates the
  // original RDF dictionary ids into it (no edges are materialized).
  NeighborhoodIndex index(result.value().grammar);
  auto origins =
      FlattenOrigins(result.value().grammar, result.value().mapping);
  std::vector<uint64_t> to_val(origins.value().size());
  for (uint64_t v = 0; v < origins.value().size(); ++v) {
    to_val[origins.value()[v]] = v;
  }
  uint64_t original_subject = 40 + 12345;  // some instance
  uint64_t subject = to_val[original_subject];
  auto types = index.OutNeighbors(subject);
  std::printf("(s, type, ?o) for s=%llu: %zu type(s), first = %llu\n",
              static_cast<unsigned long long>(subject), types.size(),
              types.empty() ? 0ull
                            : static_cast<unsigned long long>(types[0]));

  auto members = index.InNeighbors(types.empty() ? 0 : types[0]);
  std::printf("(?s, type, o) for that type: %zu instances\n",
              members.size());

  // Cross-check against the k2-tree representation's native queries,
  // which operate on original ids directly.
  auto k2 = K2GraphRepresentation::Build(rdf.graph, rdf.alphabet);
  auto k2_types =
      k2.OutNeighbors(static_cast<uint32_t>(original_subject), 0);
  std::printf("k2-tree agrees on the subject's types: %s\n",
              k2_types.size() == types.size() ? "yes" : "NO");
  return 0;
}
