// RDF-graph compression scenario (Section IV-C2), on the public API.
//
// Builds a DBpedia-style instance-types graph (a star forest: many
// subjects, few popular type objects), compresses it with the gRePair
// and k^2-tree codecs from the registry, and answers triple-pattern
// queries (s type ?o / ?s type o) on both compressed representations
// through the same interface — no decompression, no per-baseline glue.
//
//   ./build/examples/rdf_compression

#include <cstdio>

#include "src/api/grepair_api.h"

using namespace grepair;

int main() {
  // 40k instances over 40 types (Zipf popularity), like the paper's
  // DBpedia "mapping-based types" slices.
  GeneratedGraph rdf = RdfTypes(40000, 40, 2024);
  std::printf("RDF graph: %u nodes, %u triples\n", rdf.graph.num_nodes(),
              rdf.graph.num_edges());

  auto grepair_codec = api::CodecRegistry::Create("grepair").ValueOrDie();
  auto k2_codec = api::CodecRegistry::Create("k2").ValueOrDie();
  auto grepair_rep = grepair_codec->Compress(rdf.graph, rdf.alphabet);
  auto k2_rep = k2_codec->Compress(rdf.graph, rdf.alphabet);
  if (!grepair_rep.ok() || !k2_rep.ok()) {
    std::fprintf(stderr, "compression failed\n");
    return 1;
  }
  size_t grepair_bytes = grepair_rep.value()->ByteSize();
  size_t k2_bytes = k2_rep.value()->ByteSize();
  std::printf("gRePair: %zu bytes (%.3f bpe)   k2-tree: %zu bytes "
              "(%.2f bpe)   -> %.0fx smaller\n",
              grepair_bytes,
              BitsPerEdge(grepair_bytes, rdf.graph.num_edges()), k2_bytes,
              BitsPerEdge(k2_bytes, rdf.graph.num_edges()),
              static_cast<double>(k2_bytes) / grepair_bytes);

  // Triple patterns over both compressed representations through the
  // same interface. The gRePair codec answers them on the *grammar*
  // (Section V), translating original RDF dictionary ids via the
  // tracked psi' mapping; the k2 codec walks its per-label trees. No
  // edges are materialized by either.
  uint64_t subject = 40 + 12345;  // some instance
  auto grepair_types = grepair_rep.value()->OutNeighbors(subject);
  auto k2_types = k2_rep.value()->OutNeighbors(subject);
  if (!grepair_types.ok() || !k2_types.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  std::printf("(s, type, ?o) for s=%llu: %zu type(s), first = %llu\n",
              static_cast<unsigned long long>(subject),
              grepair_types.value().size(),
              grepair_types.value().empty()
                  ? 0ull
                  : static_cast<unsigned long long>(
                        grepair_types.value()[0]));

  uint64_t type = grepair_types.value().empty()
                      ? 0
                      : grepair_types.value()[0];
  auto members = grepair_rep.value()->InNeighbors(type);
  if (!members.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  std::printf("(?s, type, o) for that type: %zu instances\n",
              members.value().size());

  // The two codecs must agree on every answer.
  bool agree = grepair_types.value() == k2_types.value();
  auto k2_members = k2_rep.value()->InNeighbors(type);
  agree = agree && k2_members.ok() &&
          members.value() == k2_members.value();
  std::printf("k2-tree agrees on both queries: %s\n",
              agree ? "yes" : "NO");
  return agree ? 0 : 1;
}
