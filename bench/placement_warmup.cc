// Histogram-driven open-time warming: cold lazy open vs a warmed open
// that ranks shards by the server's access histogram and prefetches
// the hot ones before (and while) the first queries run.
//
//   placement_warmup [--size N] [--shards K] [--queries Q]
//                    [--delay-ms D] [--trials T] [--min-speedup X]
//                    [--dir PATH] [--json OUT]
//
// Serves one 16-shard sharded:grepair dblp container from an
// in-process ShardServer with a netem-style per-fetch service delay
// (--delay-ms, default 10) so shard faults are latency-bound the way a
// real SSD/WAN hop is. A profiling client then runs the hot workload —
// Q queries confined to the first half of the node-id space, so about
// half the shards are hot — which populates the server-side per-shard
// histogram. Against that warmed-up server it measures, per trial:
//
//   * cold  — open with --warm-from-histogram off, then the hot
//             workload; every hot shard faults serially on first touch
//   * warm  — open with warming on: one STATS round-trip ranks shards
//             by heat, the prefetch pool (4 threads) faults the hot
//             ones concurrently, and queries join in-flight fetches
//
// The metric is open-to-last-hot-answer wall time (cold-open-to-P99 in
// serving terms), best of --trials. Every answer from both modes is
// compared against an in-process open of the same bytes; any
// difference is a hard failure.
//
// Also differentially verifies the batched-read engine under the
// warming path: the container file is re-read through
// IoEngine::ReadBatch twice — io_uring (when the kernel has it) vs the
// forced pread fallback — and a local mmap'd open is warmed and
// queried under both modes; bytes and answers must match exactly.
//
// Exits nonzero when the warmed open is not at least --min-speedup
// times faster to the last hot answer than the cold one (default 2;
// --min-speedup 0 waives the gate, matching the remote_throughput
// pattern). The margin is structural — K serial delay-bound faults vs
// ceil(K/4) overlapped waves — so it holds on noisy shared runners.

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/pool.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"
#include "src/shard/sharded_codec.h"
#include "src/util/io_engine.h"
#include "src/util/mmap_file.h"

using namespace grepair;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: placement_warmup [--size N] [--shards K] "
               "[--queries Q]\n"
               "                        [--delay-ms D] [--trials T] "
               "[--min-speedup X]\n"
               "                        [--dir PATH] [--json OUT]\n");
  return 2;
}

struct HotRun {
  double total_s = 0;   ///< open through the last hot answer
  double open_s = 0;
  uint64_t remote_fetches = 0;
  uint64_t wrong = 0;
};

// One cold client lifetime: open against `target` with `options`, run
// the hot workload serially (a frontend answering its first requests),
// check every answer. The clock covers open + workload — the
// cold-open-to-last-hot-answer latency the placement engine targets.
Result<HotRun> RunHot(const std::string& target,
                      const serve::OpenOptions& options,
                      const std::vector<uint64_t>& hot_nodes,
                      const std::vector<std::vector<uint64_t>>& truth) {
  HotRun run;
  auto t0 = std::chrono::steady_clock::now();
  auto rep = serve::OpenRemoteContainer(target, options);
  auto t1 = std::chrono::steady_clock::now();
  if (!rep.ok()) return rep.status();
  run.open_s = bench::Seconds(t0, t1);
  for (uint64_t v : hot_nodes) {
    auto r = rep.value()->OutNeighbors(v);
    if (!r.ok()) return r.status();
    if (r.value() != truth[v]) ++run.wrong;
  }
  auto t2 = std::chrono::steady_clock::now();
  run.total_s = bench::Seconds(t0, t2);
  run.remote_fetches = rep.value()->query_stats().remote_fetches;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t size = 8;  // dblp version count
  int shards = 16;
  int queries = 100;
  int delay_ms = 10;
  int trials = 3;
  double min_speedup = 2.0;
  std::string dir = "/tmp";
  std::string json_path;
  char* end = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1 || v > 100000) {
        return Usage();
      }
      size = static_cast<uint32_t>(v);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 2 || v > 256) {
        return Usage();
      }
      shards = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1 || v > 1000000) {
        return Usage();
      }
      queries = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--delay-ms") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 0 || v > 1000) {
        return Usage();
      }
      delay_ms = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1 || v > 100) {
        return Usage();
      }
      trials = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      double v = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || v < 0.0) return Usage();
      min_speedup = v;
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return Usage();
    }
  }

  GeneratedGraph gg = DblpVersions(size, 200, 100, 1, "dblp");
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions copts;
  copts.Set("shards", std::to_string(shards));
  auto rep = codec->Compress(gg.graph, gg.alphabet, copts);
  if (!rep.ok()) {
    std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
    return 1;
  }
  std::vector<uint8_t> container =
      dynamic_cast<shard::ShardedRep*>(rep.value().get())->SerializeV2();

  // Local truth for every node, from an in-process open of the same
  // bytes — every remote and local answer is checked against this.
  auto local = shard::ShardedRep::Deserialize(SpanOf(container));
  if (!local.ok()) {
    std::fprintf(stderr, "%s\n", local.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<uint64_t>> truth(gg.graph.num_nodes());
  for (uint64_t v = 0; v < truth.size(); ++v) {
    auto r = local.value()->OutNeighbors(v);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    truth[v] = r.value();
  }

  // Hot workload: `queries` nodes striped over the FIRST HALF of the
  // id space. Shard membership follows id ranges, so this keeps about
  // half the shards hot and the rest untouched — the skew the
  // histogram is supposed to learn.
  std::vector<uint64_t> hot_nodes;
  uint64_t n = gg.graph.num_nodes();
  uint64_t hot_span = n / 2 > 0 ? n / 2 : n;
  for (int q = 0; q < queries; ++q) {
    hot_nodes.push_back((hot_span * static_cast<uint64_t>(q)) / queries);
  }

  serve::CorpusRegistry registry;
  Status added = registry.AddBytes("dblp", SpanOf(container));
  if (!added.ok()) {
    std::fprintf(stderr, "%s\n", added.ToString().c_str());
    return 1;
  }
  serve::ShardServer::Options sopts;
  sopts.debug_shard_delay_ms = delay_ms;
  auto server = serve::ShardServer::Start(std::move(registry), sopts);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  std::string target = server.value()->host_port() + "/dblp";
  std::printf(
      "corpus: %u nodes, %u edges, %d shards, %zu container bytes; "
      "%d ms simulated fetch delay; %d hot queries over the low half "
      "of the id space\n",
      gg.graph.num_nodes(), gg.graph.num_edges(), shards, container.size(),
      delay_ms, queries);

  serve::OpenOptions cold_options;
  cold_options.warm_from_histogram = false;
  serve::OpenOptions warm_options;
  warm_options.warm_from_histogram = true;

  // Profiling pass: teach the server which shards are hot. Runs cold
  // (there is no histogram to warm from yet) and is not timed.
  auto profile = RunHot(target, cold_options, hot_nodes, truth);
  if (!profile.ok() || profile.value().wrong != 0) {
    std::fprintf(stderr, "profiling pass failed\n");
    return 1;
  }
  uint64_t hot_shards = profile.value().remote_fetches;
  std::printf("profiling pass touched %llu of %d shards\n",
              (unsigned long long)hot_shards, shards);

  double cold_best = 0, warm_best = 0;
  uint64_t warm_fetches = 0;
  std::printf("%-8s %14s %14s %14s\n", "trial", "cold total", "warm total",
              "warm fetches");
  for (int t = 0; t < trials; ++t) {
    auto cold = RunHot(target, cold_options, hot_nodes, truth);
    auto warm = RunHot(target, warm_options, hot_nodes, truth);
    if (!cold.ok() || !warm.ok()) {
      std::fprintf(stderr, "%s\n",
                   (!cold.ok() ? cold : warm).status().ToString().c_str());
      return 1;
    }
    if (cold.value().wrong != 0 || warm.value().wrong != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu cold / %llu warm answers differ from the "
                   "local truth\n",
                   (unsigned long long)cold.value().wrong,
                   (unsigned long long)warm.value().wrong);
      return 1;
    }
    if (cold_best == 0 || cold.value().total_s < cold_best) {
      cold_best = cold.value().total_s;
    }
    if (warm_best == 0 || warm.value().total_s < warm_best) {
      warm_best = warm.value().total_s;
    }
    warm_fetches = warm.value().remote_fetches;
    std::printf("%-8d %12.1f ms %12.1f ms %14llu\n", t + 1,
                cold.value().total_s * 1e3, warm.value().total_s * 1e3,
                (unsigned long long)warm.value().remote_fetches);
  }
  double speedup = warm_best > 0 ? cold_best / warm_best : 0.0;
  std::printf(
      "open-to-last-hot-answer: cold %.1f ms, warm %.1f ms — %.2fx "
      "(gate >= %.1fx)\n",
      cold_best * 1e3, warm_best * 1e3, speedup, min_speedup);

  // ---- Batched-read engine differential ---------------------------
  // The same container, on disk, read back through IoEngine twice:
  // default path (io_uring when the kernel has it) vs the forced pread
  // fallback. Then a local mmap'd open is histogram-warmed and swept
  // under both modes. Bytes and answers must match exactly.
  IoEngine& engine = IoEngine::Default();
  std::string path = dir + "/placement_warmup_v2.bin";
  auto wrote = WriteFileBytes(
      path, api::WrapCodecPayload("sharded:grepair", container));
  if (!wrote.ok()) {
    std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
    return 1;
  }
  uint64_t uring_batches = 0;
  bool io_ok = true;
  {
    auto read_all = [&](bool force, std::vector<uint8_t>* out,
                        uint64_t* batches) {
      engine.set_force_fallback(force);
      auto file = MmapFile::Open(path);
      if (!file.ok()) return false;
      size_t total = file.value()->span().size;
      out->assign(total, 0);
      int fd = ::open(path.c_str(), O_RDONLY);
      if (fd < 0) return false;
      std::vector<IoReadRequest> reads;
      constexpr uint32_t kChunk = 64u << 10;
      for (size_t off = 0; off < total; off += kChunk) {
        IoReadRequest req;
        req.fd = fd;
        req.offset = off;
        req.dst = out->data() + off;
        req.length = static_cast<uint32_t>(
            total - off < kChunk ? total - off : kChunk);
        reads.push_back(req);
      }
      *batches = engine.ReadBatch(&reads);
      ::close(fd);
      engine.set_force_fallback(false);
      for (const auto& r : reads) {
        if (!r.status.ok()) {
          std::fprintf(stderr, "batched read: %s\n",
                       r.status.ToString().c_str());
          return false;
        }
      }
      return true;
    };
    std::vector<uint8_t> via_default, via_fallback;
    uint64_t fb_batches = 0;
    if (!read_all(false, &via_default, &uring_batches) ||
        !read_all(true, &via_fallback, &fb_batches)) {
      io_ok = false;
    } else if (via_default != via_fallback) {
      std::fprintf(stderr,
                   "FAIL: io_uring and pread reads of the container "
                   "differ\n");
      io_ok = false;
    } else if (fb_batches != 0) {
      std::fprintf(stderr,
                   "FAIL: forced fallback still reported %llu uring "
                   "batches\n",
                   (unsigned long long)fb_batches);
      io_ok = false;
    }
  }
  std::printf("io engine: %s (%llu uring batches on the default path; "
              "forced-pread bytes identical)\n",
              engine.uring_available() ? "io_uring" : "pread fallback",
              (unsigned long long)uring_batches);

  // Local warmed open under both engine modes: Prefetch drives
  // LocalShardSource::WarmShards through ReadBatch; the swept answers
  // must match the truth either way.
  std::vector<size_t> all_shards(static_cast<size_t>(shards));
  std::iota(all_shards.begin(), all_shards.end(), 0);
  uint64_t local_uring_batches = 0;
  for (int force = 0; force < 2 && io_ok; ++force) {
    engine.set_force_fallback(force == 1);
    auto opened = api::OpenCompressedFile(path);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      engine.set_force_fallback(false);
      io_ok = false;
      break;
    }
    auto* sharded =
        dynamic_cast<shard::ShardedRep*>(opened.value().get());
    if (sharded == nullptr) {
      std::fprintf(stderr, "local open is not sharded\n");
      engine.set_force_fallback(false);
      io_ok = false;
      break;
    }
    sharded->set_prefetch_threads(2);
    sharded->Prefetch(all_shards);
    sharded->WaitForPrefetch();
    for (uint64_t v : hot_nodes) {
      auto r = sharded->OutNeighbors(v);
      if (!r.ok() || r.value() != truth[v]) {
        std::fprintf(stderr,
                     "FAIL: local %s-mode answer differs from truth\n",
                     force == 1 ? "pread" : "default");
        io_ok = false;
        break;
      }
    }
    if (force == 0) {
      local_uring_batches = sharded->query_stats().uring_batches;
    }
    engine.set_force_fallback(false);
  }
  std::remove(path.c_str());
  if (io_ok) {
    std::printf("local warm sweep: answers identical under io_uring and "
                "pread (%llu uring batches via WarmShards)\n",
                (unsigned long long)local_uring_batches);
  }

  if (!json_path.empty()) {
    bench::JsonWriter json;
    json.Add("bench", std::string("placement_warmup"));
    json.Add("dataset", gg.name);
    json.Add("shards", shards);
    json.Add("queries", queries);
    json.Add("delay_ms", delay_ms);
    json.Add("trials", trials);
    json.Add("hot_shards", hot_shards);
    json.Add("cold_ms", cold_best * 1e3);
    json.Add("warm_ms", warm_best * 1e3);
    json.Add("speedup", speedup);
    json.Add("warm_remote_fetches", warm_fetches);
    json.Add("min_speedup", min_speedup);
    json.Add("io_engine", std::string(engine.uring_available()
                                          ? "io_uring"
                                          : "pread"));
    json.Add("uring_batches", uring_batches);
    json.Add("io_differential_ok", std::string(io_ok ? "true" : "false"));
    if (!json.WriteTo(json_path)) return 1;
  }

  if (!io_ok) return 1;
  if (min_speedup == 0.0) {
    std::printf("PASS (gate waived)\n");
    return 0;
  }
  if (speedup < min_speedup) {
    std::printf("FAIL: warm open-to-last-hot-answer only %.2fx the cold "
                "path (gate %.1fx; --min-speedup 0 waives)\n",
                speedup, min_speedup);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
