// Cold-open + first-query latency: GRSHARD1 eager open vs GRSHARD2
// lazy mmap open on a 16-shard dblp container.
//
//   open_latency [--size N] [--shards K] [--queries Q]
//                [--min-open-speedup X] [--dir PATH]
//
// Writes the same sharded:grepair rep as a v1 (eager) and a v2
// (footer-directory) backend-tagged file, then measures per format:
//
//   * cold open      — mmap + parse until the rep is queryable
//                      (v1 deserializes every shard; v2 reads the
//                      footer and faults nothing)
//   * first query    — one OutNeighbors on a cold rep (v2 pays its
//                      first shard fault here)
//   * full touch     — batch over sampled nodes across all shards
//
// and verifies the answers are identical. Exits nonzero when the lazy
// cold open is not at least --min-open-speedup times faster than the
// eager one (default 5; the CI Release leg runs this as a smoke gate —
// the margin is structural, parse-16-grammars vs read-one-footer, so
// it holds on noisy shared runners too).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/mmap_file.h"

using namespace grepair;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: open_latency [--size N] [--shards K] [--queries Q]\n"
               "                    [--min-open-speedup X] [--dir PATH]\n");
  return 2;
}

struct OpenTimings {
  double open_s = 0;
  double first_query_s = 0;
  double full_touch_s = 0;
  uint64_t faults_after_first = 0;
  uint64_t faults_after_touch = 0;
};

// One cold run over `path`: open, one query, then a batch touching
// every sampled node. The rep is dropped between runs so every
// measurement starts from the file.
Result<OpenTimings> MeasureOpen(const std::string& path,
                                const std::vector<uint64_t>& probe,
                                const std::vector<uint64_t>& sweep,
                                std::vector<std::vector<uint64_t>>* answers) {
  OpenTimings t;
  auto t0 = std::chrono::steady_clock::now();
  auto rep = api::OpenCompressedFile(path);
  auto t1 = std::chrono::steady_clock::now();
  if (!rep.ok()) return rep.status();
  t.open_s = bench::Seconds(t0, t1);

  auto q0 = std::chrono::steady_clock::now();
  auto first = rep.value()->OutNeighbors(probe[0]);
  auto q1 = std::chrono::steady_clock::now();
  if (!first.ok()) return first.status();
  t.first_query_s = bench::Seconds(q0, q1);
  t.faults_after_first = rep.value()->query_stats().shard_faults;

  auto s0 = std::chrono::steady_clock::now();
  auto batch = rep.value()->OutNeighborsBatch(sweep);
  auto s1 = std::chrono::steady_clock::now();
  if (!batch.ok()) return batch.status();
  t.full_touch_s = bench::Seconds(s0, s1);
  t.faults_after_touch = rep.value()->query_stats().shard_faults;
  *answers = std::move(batch).ValueOrDie();
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t size = 8;       // dblp version count
  int shards = 16;
  int queries = 256;
  double min_open_speedup = 5.0;
  std::string dir = "/tmp";
  char* end = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1 || v > 100000) {
        return Usage();
      }
      size = static_cast<uint32_t>(v);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1 || v > 256) {
        return Usage();
      }
      shards = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1 || v > 1000000) {
        return Usage();
      }
      queries = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--min-open-speedup") == 0 &&
               i + 1 < argc) {
      double v = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || v <= 0.0) return Usage();
      min_open_speedup = v;
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else {
      return Usage();
    }
  }

  GeneratedGraph gg = DblpVersions(size, 200, 100, 1, "dblp");
  std::printf("dataset %s: %u nodes, %u edges; %d shards\n",
              gg.name.c_str(), gg.graph.num_nodes(), gg.graph.num_edges(),
              shards);

  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", std::to_string(shards));
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  if (!rep.ok()) {
    std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
    return 1;
  }
  auto* sharded = dynamic_cast<shard::ShardedRep*>(rep.value().get());
  if (sharded == nullptr) {
    std::fprintf(stderr, "rep is not sharded\n");
    return 1;
  }

  std::string v1_path = dir + "/open_latency_v1.bin";
  std::string v2_path = dir + "/open_latency_v2.bin";
  auto w1 = WriteFileBytes(
      v1_path, api::WrapCodecPayload("sharded:grepair", sharded->Serialize()));
  auto w2 = WriteFileBytes(
      v2_path,
      api::WrapCodecPayload("sharded:grepair", sharded->SerializeV2()));
  if (!w1.ok() || !w2.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!w1.ok() ? w1 : w2).ToString().c_str());
    return 1;
  }

  // Probe: one node; sweep: `queries` nodes striped across the id
  // space so every shard gets touched.
  std::vector<uint64_t> probe = {0};
  std::vector<uint64_t> sweep;
  uint64_t n = gg.graph.num_nodes();
  for (int q = 0; q < queries; ++q) {
    sweep.push_back((n * static_cast<uint64_t>(q)) / queries);
  }

  std::vector<std::vector<uint64_t>> eager_answers, lazy_answers;
  auto eager = MeasureOpen(v1_path, probe, sweep, &eager_answers);
  auto lazy = MeasureOpen(v2_path, probe, sweep, &lazy_answers);
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  if (!eager.ok() || !lazy.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!eager.ok() ? eager : lazy).status().ToString().c_str());
    return 1;
  }

  if (eager_answers != lazy_answers) {
    std::fprintf(stderr, "FAIL: eager and lazy answers differ\n");
    return 1;
  }

  std::printf("%-22s %14s %14s %8s\n", "", "v1 eager", "v2 lazy", "ratio");
  auto row = [](const char* label, double a, double b) {
    std::printf("%-22s %12.3f ms %12.3f ms %7.1fx\n", label, a * 1e3,
                b * 1e3, b > 0 ? a / b : 0.0);
  };
  row("cold open", eager.value().open_s, lazy.value().open_s);
  row("first query", eager.value().first_query_s,
      lazy.value().first_query_s);
  row("batch over all shards", eager.value().full_touch_s,
      lazy.value().full_touch_s);
  std::printf("lazy shard faults: %llu after first query, %llu after the "
              "full sweep (of %zu shards)\n",
              (unsigned long long)lazy.value().faults_after_first,
              (unsigned long long)lazy.value().faults_after_touch,
              sharded->num_shards());

  double speedup = lazy.value().open_s > 0
                       ? eager.value().open_s / lazy.value().open_s
                       : 0.0;
  std::printf("cold-open speedup (lazy vs eager): %.1fx (gate >= %.1fx)\n",
              speedup, min_open_speedup);
  if (lazy.value().faults_after_first < 1) {
    std::fprintf(stderr, "FAIL: lazy first query faulted no shard\n");
    return 1;
  }
  if (speedup < min_open_speedup) {
    std::fprintf(stderr, "FAIL: lazy cold open %.1fx < required %.1fx\n",
                 speedup, min_open_speedup);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
