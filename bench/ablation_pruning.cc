// Ablation: the pruning phase (Section III-A3). Reports rules and
// encoded size with pruning off, the paper's single bottom-up pass, and
// the fixpoint extension, demonstrating that pruning never hurts and
// usually trims a large fraction of the rules.

#include <cstdio>

#include "bench/bench_util.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  const std::vector<std::string> graphs = {
      "CA-GrQc", "Email-Enron", "Identica", "Jamendo", "Tic-Tac-Toe",
      "DBLP60-70"};
  std::printf("Ablation: pruning\n");
  std::printf("%-14s | %8s %9s | %8s %9s | %8s %9s\n", "graph",
              "rules", "bpe", "rules", "bpe", "rules", "bpe");
  std::printf("%-14s | %18s | %18s | %18s\n", "", "no pruning",
              "paper (1 pass)", "fixpoint");
  for (const auto& name : graphs) {
    PaperDataset d = MakePaperDataset(name);
    CompressOptions off;
    off.prune = false;
    CompressOptions paper;  // defaults: single pass
    CompressOptions fix;
    fix.prune_options.iterate_to_fixpoint = true;
    GrepairRun r_off = RunGrepair(d.data, off);
    GrepairRun r_paper = RunGrepair(d.data, paper);
    GrepairRun r_fix = RunGrepair(d.data, fix);
    std::printf("%-14s | %8u %9.3f | %8u %9.3f | %8u %9.3f\n",
                name.c_str(), r_off.grammar.num_rules, r_off.bpe,
                r_paper.grammar.num_rules, r_paper.bpe,
                r_fix.grammar.num_rules, r_fix.bpe);
  }
  return 0;
}
