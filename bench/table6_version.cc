// Table VI: version graphs — gRePair vs k2-tree (all four) and LM/HN
// (the unlabeled DBLP graphs only, as in the paper).
//
// Paper shape: gRePair wins everywhere; Tic-Tac-Toe collapses to
// almost nothing (0.12 bpe vs 9.62 for k2).

#include <cstdio>

#include "bench/bench_util.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  const double paper_grepair[4] = {0.12, 9.06, 9.54, 13.39};
  const double paper_k2[4] = {9.62, 13.10, 15.78, 20.80};
  const double paper_lm[4] = {-1, -1, 16.44, 19.32};
  const double paper_hn[4] = {-1, -1, 16.65, 18.26};

  std::printf("Table VI: version graphs, bpe (ours; paper in parens)\n");
  std::printf("%-14s %18s %18s %18s %18s\n", "graph", "gRePair", "k2-tree",
              "LM", "HN");
  auto names = VersionGraphNames();
  int wins = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    PaperDataset d = MakePaperDataset(names[i]);
    GrepairRun run = RunGrepair(d.data);
    double k2 = RunK2(d.data);
    bool labeled = d.data.alphabet.size() > 1;
    double lm = labeled ? -1 : RunLm(d.data);
    double hn = labeled ? -1 : RunHn(d.data);
    double best_other = k2;
    if (lm >= 0) best_other = std::min(best_other, lm);
    if (hn >= 0) best_other = std::min(best_other, hn);
    if (run.bpe < best_other) ++wins;
    auto cell = [](double v, double paper) {
      static char buf[64];
      if (v < 0) {
        std::snprintf(buf, sizeof buf, "%9s %8s", "-", "(-)");
      } else if (paper < 0) {
        std::snprintf(buf, sizeof buf, "%9.2f %8s", v, "(-)");
      } else {
        std::snprintf(buf, sizeof buf, "%9.2f (%6.2f)", v, paper);
      }
      return std::string(buf);
    };
    std::printf("%-14s %18s %18s %18s %18s\n", names[i].c_str(),
                cell(run.bpe, paper_grepair[i]).c_str(),
                cell(k2, paper_k2[i]).c_str(),
                cell(lm, paper_lm[i]).c_str(),
                cell(hn, paper_hn[i]).c_str());
  }
  std::printf("\nshape: gRePair best on %d/%zu version graphs "
              "(paper: 4/4)\n", wins, names.size());
  return 0;
}
