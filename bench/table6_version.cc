// Table VI: version graphs — gRePair vs k2-tree (all four) and LM/HN
// (the unlabeled DBLP graphs only, as in the paper), plus the
// GRSHARD3 follow-on the paper motivates: shipping each new version of
// an evolving corpus as a delta container instead of re-shipping the
// whole compressed archive.
//
// Paper shape: gRePair wins everywhere; Tic-Tac-Toe collapses to
// almost nothing (0.12 bpe vs 9.62 for k2). Delta shape: an update
// touching a small fraction of the edge set ships far fewer bytes as
// a GRSHARD3 delta than as a full re-ship of the container.
//
//   bench_table6_version [--json out.json]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <set>
#include <utility>

#include "bench/bench_util.h"
#include "src/shard/delta_overlay.h"
#include "src/util/hashing.h"
#include "src/util/mmap_file.h"

using namespace grepair;
using namespace grepair::bench;

namespace {

std::set<std::pair<uint32_t, uint32_t>> PairSet(const Hypergraph& g) {
  std::set<std::pair<uint32_t, uint32_t>> pairs;
  for (const HEdge& e : g.edges()) {
    if (e.att.size() == 2) pairs.insert({e.att[0], e.att[1]});
  }
  return pairs;
}

struct FileInfo {
  uint64_t hash = 0;
  uint64_t size = 0;
};

FileInfo HashFile(const std::string& path) {
  FileInfo info;
  auto file = MmapFile::Open(path);
  if (!file.ok()) return info;
  ByteSpan span = file.value()->span();
  info.hash = HashBytes(span.data, span.size);
  info.size = span.size;
  return info;
}

// Ships `kVersions` updates of a large corpus twice — as full GRSHARD2
// re-ships and as a GRSHARD3 delta chain — and reports the bytes each
// strategy moves. Churn per version is small relative to the corpus
// (the regime deltas are for: overlay runs cost ~12 raw bytes/edge
// against ~0.4 compressed bytes/edge, so a diff pays off only while
// cumulative churn stays a few percent of the edge set).
int RunDeltaShipping(JsonWriter* json) {
  const uint32_t kVersions = 5;  // base + 4 deltas
  const uint32_t kChurn = 40;    // edits per version
  GeneratedGraph gg = ErdosRenyi(6000, 30000, 41);
  const uint32_t n = gg.graph.num_nodes();
  std::set<std::pair<uint32_t, uint32_t>> truth = PairSet(gg.graph);

  std::string dir = (std::filesystem::temp_directory_path() /
                     "grepair_table6_delta")
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "4");
  options.Set("threads", "4");

  auto container_for =
      [&](const std::set<std::pair<uint32_t, uint32_t>>& pairs)
      -> std::vector<uint8_t> {
    Hypergraph g(n);
    for (const auto& p : pairs) g.AddSimpleEdge(p.first, p.second, 0);
    auto rep = codec->Compress(g, gg.alphabet, options);
    if (!rep.ok()) return {};
    return api::WrapCodecPayload(
        "sharded:grepair",
        dynamic_cast<shard::ShardedRep*>(rep.value().get())->SerializeV2());
  };

  std::string base_path = dir + "/v0.grc";
  auto base_bytes = container_for(truth);
  if (base_bytes.empty() ||
      !WriteFileBytesAtomic(base_path, SpanOf(base_bytes)).ok()) {
    std::fprintf(stderr, "cannot stage the base container\n");
    return 1;
  }

  std::printf("\nGRSHARD3 delta shipping vs full re-ship "
              "(ER %u nodes / %zu edges, %u edits per version)\n",
              n, truth.size(), kChurn);
  std::printf("%-8s %12s %12s %8s %8s %8s\n", "version", "full bytes",
              "delta bytes", "ratio", "edits", "shards");

  std::mt19937_64 rng(4242);
  uint64_t total_full = 0, total_delta = 0;
  std::vector<std::string> chain;
  std::string prev_path = base_path;
  for (uint32_t version = 1; version < kVersions; ++version) {
    std::vector<shard::EdgeEdit> edits;
    std::vector<std::pair<uint32_t, uint32_t>> live(truth.begin(),
                                                    truth.end());
    while (edits.size() < kChurn * 3 / 8) {  // ~15 deletes
      auto p = live[rng() % live.size()];
      if (truth.erase(p)) {
        edits.push_back(shard::EdgeEdit::Delete(p.first, p.second));
      }
    }
    while (edits.size() < kChurn) {  // ~25 adds
      uint32_t u = rng() % n, v = rng() % n;
      if (u != v && truth.insert({u, v}).second) {
        edits.push_back(shard::EdgeEdit::Add(u, v, 0));
      }
    }

    auto opened = api::OpenVersioned(base_path, chain);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    auto* sharded = dynamic_cast<shard::ShardedRep*>(opened.value().get());
    auto applied = sharded->ApplyEdits(edits);
    if (!applied.ok()) {
      std::fprintf(stderr, "%s\n", applied.ToString().c_str());
      return 1;
    }
    FileInfo prev = HashFile(prev_path);
    auto delta = sharded->BuildDelta(prev.hash, prev.size);
    if (!delta.ok()) {
      std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
      return 1;
    }
    auto delta_bytes = shard::EncodeDeltaContainer(delta.value());
    std::string delta_path =
        dir + "/v" + std::to_string(version) + ".grs3";
    if (!WriteFileBytesAtomic(delta_path, SpanOf(delta_bytes)).ok()) {
      std::fprintf(stderr, "cannot write %s\n", delta_path.c_str());
      return 1;
    }
    chain.push_back(delta_path);
    prev_path = delta_path;

    uint64_t full = container_for(truth).size();
    total_full += full;
    total_delta += delta_bytes.size();
    std::printf("%-8u %12llu %12zu %7.1f%% %8zu %8zu\n", version,
                (unsigned long long)full, delta_bytes.size(),
                100.0 * (double)delta_bytes.size() / (double)full,
                edits.size(), delta.value().shards.size());
  }

  double ratio = total_full == 0
                     ? 0.0
                     : (double)total_delta / (double)total_full;
  std::printf("totals: full re-ship %llu bytes, delta chain %llu bytes "
              "(%.1f%%)\n",
              (unsigned long long)total_full,
              (unsigned long long)total_delta, 100.0 * ratio);
  if (json != nullptr) {
    json->Add("delta_versions", (uint64_t)(kVersions - 1));
    json->Add("full_reship_bytes", total_full);
    json->Add("delta_chain_bytes", total_delta);
    json->Add("delta_over_full_ratio", ratio);
  }
  std::filesystem::remove_all(dir);
  // The delta chain must be a real saving, not a wash: the shape CI
  // tracks is "diffs beat re-ships on version graphs".
  if (total_delta >= total_full) {
    std::fprintf(stderr, "delta chain did not beat full re-ship\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  JsonWriter json;

  const double paper_grepair[4] = {0.12, 9.06, 9.54, 13.39};
  const double paper_k2[4] = {9.62, 13.10, 15.78, 20.80};
  const double paper_lm[4] = {-1, -1, 16.44, 19.32};
  const double paper_hn[4] = {-1, -1, 16.65, 18.26};

  std::printf("Table VI: version graphs, bpe (ours; paper in parens)\n");
  std::printf("%-14s %18s %18s %18s %18s\n", "graph", "gRePair", "k2-tree",
              "LM", "HN");
  auto names = VersionGraphNames();
  int wins = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    PaperDataset d = MakePaperDataset(names[i]);
    GrepairRun run = RunGrepair(d.data);
    double k2 = RunK2(d.data);
    bool labeled = d.data.alphabet.size() > 1;
    double lm = labeled ? -1 : RunLm(d.data);
    double hn = labeled ? -1 : RunHn(d.data);
    double best_other = k2;
    if (lm >= 0) best_other = std::min(best_other, lm);
    if (hn >= 0) best_other = std::min(best_other, hn);
    if (run.bpe < best_other) ++wins;
    json.Add(names[i] + "_grepair_bpe", run.bpe);
    json.Add(names[i] + "_k2_bpe", k2);
    auto cell = [](double v, double paper) {
      static char buf[64];
      if (v < 0) {
        std::snprintf(buf, sizeof buf, "%9s %8s", "-", "(-)");
      } else if (paper < 0) {
        std::snprintf(buf, sizeof buf, "%9.2f %8s", v, "(-)");
      } else {
        std::snprintf(buf, sizeof buf, "%9.2f (%6.2f)", v, paper);
      }
      return std::string(buf);
    };
    std::printf("%-14s %18s %18s %18s %18s\n", names[i].c_str(),
                cell(run.bpe, paper_grepair[i]).c_str(),
                cell(k2, paper_k2[i]).c_str(),
                cell(lm, paper_lm[i]).c_str(),
                cell(hn, paper_hn[i]).c_str());
  }
  std::printf("\nshape: gRePair best on %d/%zu version graphs "
              "(paper: 4/4)\n", wins, names.size());
  json.Add("grepair_wins", wins);

  int rc = RunDeltaShipping(&json);
  if (!json_path.empty() && !json.WriteTo(json_path)) rc = 1;
  return rc;
}
