// Table IV: compression (bpe) for maxRank in {2..8} on six network
// graphs. The paper's finding: the best value is usually 2 or 4, the
// rank-4 column is within ~1 bpe of the best everywhere, and large
// maxRank hurts — the *shape* to reproduce here.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  const std::vector<std::string> graphs = {
      "Email-EuAll", "NotreDame",   "CA-AstroPh",
      "CA-CondMat",  "CA-GrQc",     "Email-Enron"};
  // Paper's Table IV values (bpe) for reference.
  const double paper[6][7] = {
      {6.66, 6.69, 6.42, 7.07, 7.33, 7.55, 7.36},
      {4.84, 4.90, 5.19, 5.14, 6.13, 7.10, 6.69},
      {16.94, 16.75, 16.77, 16.75, 17.44, 19.42, 18.36},
      {18.82, 17.73, 17.40, 18.47, 18.84, 20.26, 19.83},
      {13.65, 13.31, 13.20, 14.30, 14.91, 15.04, 14.93},
      {10.21, 10.74, 10.28, 10.79, 11.62, 13.29, 11.53}};

  std::printf("Table IV: bpe under maxRank 2..8 (ours / paper)\n");
  std::printf("%-14s", "graph");
  for (int r = 2; r <= 8; ++r) std::printf("      r=%d", r);
  std::printf("   best_r\n");
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    PaperDataset d = MakePaperDataset(graphs[gi]);
    std::printf("%-14s", graphs[gi].c_str());
    double best = 1e18;
    int best_rank = 0;
    double bpes[7];
    for (int rank = 2; rank <= 8; ++rank) {
      CompressOptions options;
      options.max_rank = rank;
      GrepairRun run = RunGrepair(d.data, options);
      bpes[rank - 2] = run.bpe;
      if (run.bpe < best) {
        best = run.bpe;
        best_rank = rank;
      }
      std::printf(" %8.2f", run.bpe);
    }
    std::printf("   %d\n", best_rank);
    std::printf("%-14s", "  (paper)");
    for (int r = 0; r < 7; ++r) std::printf(" %8.2f", paper[gi][r]);
    std::printf("\n");
    // Shape check (paper: "the best result was either achieved with a
    // setting of 2 or with a value of 4"; high ranks only hurt). On a
    // grammar-incompressible stand-in the sweep is flat and the argmax
    // is noise, so a sub-0.5-bpe spread also counts as conforming.
    double rank4 = bpes[2];
    double worst = *std::max_element(bpes, bpes + 7);
    bool small_best = best_rank <= 4;
    bool flat = worst - best < 0.5;
    std::printf("  best at rank %d, rank4 delta %.2f bpe %s\n", best_rank,
                rank4 - best,
                small_best ? "(shape OK: small rank wins)"
                : flat     ? "(shape OK: sweep flat, graph "
                             "grammar-incompressible)"
                           : "(shape MISMATCH)");
  }
  return 0;
}
