// Ablation: the virtual-edge pass (Section III-A) that connects
// disconnected components and reruns the replacement loop. Critical for
// disjoint unions (version graphs, Figure 13); near-neutral on
// connected graphs.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/datasets/generators.h"

using namespace grepair;
using namespace grepair::bench;

namespace {

void Row(const GeneratedGraph& g) {
  CompressOptions with;
  CompressOptions without;
  without.connect_components = false;
  GrepairRun r_with = RunGrepair(g, with);
  GrepairRun r_without = RunGrepair(g, without);
  std::printf("%-18s %9.3f %9.3f %8.1f%% %10u\n", g.name.c_str(),
              r_without.bpe, r_with.bpe,
              100.0 * (r_without.bpe - r_with.bpe) /
                  (r_without.bpe > 0 ? r_without.bpe : 1),
              r_with.stats.virtual_edges_added);
}

}  // namespace

int main() {
  std::printf("Ablation: virtual edges (bpe without/with, saving, "
              "#virtual edges)\n");
  std::printf("%-18s %9s %9s %9s %10s\n", "graph", "without", "with",
              "saving", "virt");
  Row(DisjointCopies(CycleWithDiagonal(), 512, "copies512"));
  Row(MakePaperDataset("Tic-Tac-Toe").data);
  Row(MakePaperDataset("DBLP60-70").data);
  Row(MakePaperDataset("CA-GrQc").data);
  Row(MakePaperDataset("Types ru").data);
  return 0;
}
