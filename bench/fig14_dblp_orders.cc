// Figure 14: compressing a growing version graph (yearly snapshots of a
// DBLP-like co-authorship network, 1960..1970) under different node
// orders, against the k2-tree baseline.
//
// Paper shape: with the FP order gRePair stays clearly below k2-tree as
// versions accumulate; BFS and random orders land much closer to the
// k2-tree curve.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/datasets/generators.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  const uint32_t kYears = 11;  // 1960..1970
  auto snapshots = CoAuthorshipHistory(kYears, 330, 120, 303);

  std::printf("Figure 14: DBLP-like version growth, bpe per order\n");
  std::printf("%5s %9s %9s %9s %9s %9s %9s\n", "year", "edges", "fp",
              "fp0", "bfs", "random", "k2-tree");
  double fp_sum = 0, random_sum = 0, k2_sum = 0;
  for (uint32_t upto = 1; upto <= kYears; ++upto) {
    std::vector<const Hypergraph*> parts;
    for (uint32_t y = 0; y < upto; ++y) parts.push_back(&snapshots[y]);
    Alphabet alpha;
    alpha.Add("e", 2);
    GeneratedGraph g = DisjointUnion(
        parts, alpha, "dblp60-" + std::to_string(60 + upto - 1));
    std::printf("%5u %9u", 60 + upto - 1, g.graph.num_edges());
    double row[4] = {0, 0, 0, 0};
    const NodeOrderKind orders[4] = {
        NodeOrderKind::kFp, NodeOrderKind::kFp0, NodeOrderKind::kBfs,
        NodeOrderKind::kRandom};
    for (int oi = 0; oi < 4; ++oi) {
      CompressOptions options;
      options.node_order = orders[oi];
      GrepairRun run = RunGrepair(g, options);
      row[oi] = run.bpe;
      std::printf(" %9.2f", run.bpe);
    }
    double k2 = RunK2(g);
    std::printf(" %9.2f\n", k2);
    fp_sum += row[0];
    random_sum += row[3];
    k2_sum += k2;
  }
  std::printf("\nshape: avg fp %.2f vs random %.2f vs k2 %.2f — %s "
              "(paper: fp clearly best, random/bfs close to k2)\n",
              fp_sum / kYears, random_sum / kYears, k2_sum / kYears,
              fp_sum < random_sum && fp_sum < k2_sum ? "OK" : "MISMATCH");
  return 0;
}
