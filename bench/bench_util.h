// Shared helpers for the table/figure reproduction benches: run each
// compressor on a dataset and report bits-per-edge / byte sizes in the
// paper's format, with the published numbers printed alongside.
//
// Every bench is a plain executable printing one table; absolute values
// differ from the paper (synthetic scaled stand-ins, different
// hardware), the *shape* — who wins and by roughly what factor — is
// what EXPERIMENTS.md tracks.

#ifndef GREPAIR_BENCH_BENCH_UTIL_H_
#define GREPAIR_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/api/grepair_api.h"
#include "src/datasets/paper_datasets.h"
#include "src/encoding/grammar_coder.h"
#include "src/grepair/compressor.h"

namespace grepair {
namespace bench {

inline double Seconds(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// \brief gRePair end-to-end: compress + binary encode; returns bpe.
struct GrepairRun {
  double bpe = 0;
  size_t bytes = 0;
  CompressStats stats;
  GrammarStats grammar;
  double seconds = 0;
};

inline GrepairRun RunGrepair(const GeneratedGraph& gg,
                             CompressOptions options = {}) {
  auto t0 = std::chrono::steady_clock::now();
  auto result = Compress(gg.graph, gg.alphabet, options);
  GrepairRun run;
  if (!result.ok()) {
    std::fprintf(stderr, "compress failed on %s: %s\n", gg.name.c_str(),
                 result.status().ToString().c_str());
    return run;
  }
  auto bytes = EncodeGrammar(result.value().grammar);
  auto t1 = std::chrono::steady_clock::now();
  run.bytes = bytes.size();
  run.bpe = BitsPerEdge(bytes.size(), gg.graph.num_edges());
  run.stats = result.value().stats;
  run.grammar = ComputeGrammarStats(result.value().grammar);
  run.seconds = Seconds(t0, t1);
  return run;
}

/// \brief Registry names without the sharded:<inner> meta-variants —
/// the paper-table reproductions compare the paper's codecs;
/// bench/shard_scaling.cc covers the sharded layer.
inline std::vector<std::string> PaperCodecNames() {
  return api::CodecRegistry::BaseNames();
}

/// \brief One registry codec's run over a dataset.
struct CodecRun {
  bool ok = false;       ///< false: failed or not applicable to the input
  std::string error;     ///< status message when !ok
  size_t bytes = 0;      ///< ByteSize(), the tables' size metric
  double bpe = 0;
  double seconds = 0;
};

/// \brief Runs any registered codec (by name) over `gg`; the generic
/// replacement for the old per-baseline Run* glue.
inline CodecRun RunCodec(const std::string& backend,
                         const GeneratedGraph& gg,
                         const std::string& option_spec = "") {
  CodecRun run;
  auto codec = api::CodecRegistry::Create(backend);
  if (!codec.ok()) {
    run.error = codec.status().ToString();
    return run;
  }
  auto options = api::CodecOptions::Parse(option_spec);
  if (!options.ok()) {
    run.error = options.status().ToString();
    return run;
  }
  auto t0 = std::chrono::steady_clock::now();
  auto rep =
      codec.value()->Compress(gg.graph, gg.alphabet, options.value());
  auto t1 = std::chrono::steady_clock::now();
  if (!rep.ok()) {
    run.error = rep.status().ToString();
    return run;
  }
  run.ok = true;
  run.bytes = rep.value()->ByteSize();
  run.bpe = BitsPerEdge(run.bytes, gg.graph.num_edges());
  run.seconds = Seconds(t0, t1);
  return run;
}

/// \brief Plain k^2-tree baseline bpe.
inline double RunK2(const GeneratedGraph& gg) {
  return RunCodec("k2", gg).bpe;
}

inline size_t RunK2Bytes(const GeneratedGraph& gg) {
  return RunCodec("k2", gg).bytes;
}

/// \brief LM baseline bpe (unlabeled out-adjacency).
inline double RunLm(const GeneratedGraph& gg) {
  return RunCodec("lm", gg).bpe;
}

/// \brief HN baseline bpe (unlabeled out-adjacency).
inline double RunHn(const GeneratedGraph& gg) {
  return RunCodec("hn", gg).bpe;
}

/// \brief Adjacency-list RePair (Claude & Navarro) bpe.
inline double RunAdjRePair(const GeneratedGraph& gg) {
  return RunCodec("repair-adj", gg).bpe;
}

/// \brief Flat key→value metrics sink for `--json <out>`: CI uploads
/// the file as a build artifact (BENCH_*.json) so runs are diffable
/// across commits. Insertion order is preserved; values are numbers or
/// strings only — benches emit scalars, not structure.
class JsonWriter {
 public:
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    rows_.emplace_back(key, buf);
  }
  void Add(const std::string& key, uint64_t value) {
    rows_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, int value) {
    rows_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, const std::string& value) {
    rows_.emplace_back(key, "\"" + Escaped(value) + "\"");
  }

  /// Writes `{ "k": v, ... }`; false (with a stderr note) on IO error.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", Escaped(rows_[i].first).c_str(),
                   rows_[i].second.c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    bool ok = std::fclose(f) == 0;
    if (!ok) std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return ok;
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> rows_;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void PrintScaleNote(const PaperDataset& d) {
  std::printf("   [%s: stand-in V=%u E=%u, paper V=%llu E=%llu, "
              "edge scale %.3f]\n",
              d.paper.name.c_str(), d.data.graph.num_nodes(),
              d.data.graph.num_edges(),
              static_cast<unsigned long long>(d.paper.nodes),
              static_cast<unsigned long long>(d.paper.edges), d.scale);
}

}  // namespace bench
}  // namespace grepair

#endif  // GREPAIR_BENCH_BENCH_UTIL_H_
