// Shared helpers for the table/figure reproduction benches: run each
// compressor on a dataset and report bits-per-edge / byte sizes in the
// paper's format, with the published numbers printed alongside.
//
// Every bench is a plain executable printing one table; absolute values
// differ from the paper (synthetic scaled stand-ins, different
// hardware), the *shape* — who wins and by roughly what factor — is
// what EXPERIMENTS.md tracks.

#ifndef GREPAIR_BENCH_BENCH_UTIL_H_
#define GREPAIR_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

#include "src/baselines/hn.h"
#include "src/baselines/k2_compressor.h"
#include "src/baselines/lm.h"
#include "src/baselines/string_repair.h"
#include "src/datasets/paper_datasets.h"
#include "src/encoding/grammar_coder.h"
#include "src/grepair/compressor.h"

namespace grepair {
namespace bench {

inline double Seconds(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// \brief gRePair end-to-end: compress + binary encode; returns bpe.
struct GrepairRun {
  double bpe = 0;
  size_t bytes = 0;
  CompressStats stats;
  GrammarStats grammar;
  double seconds = 0;
};

inline GrepairRun RunGrepair(const GeneratedGraph& gg,
                             CompressOptions options = {}) {
  auto t0 = std::chrono::steady_clock::now();
  auto result = Compress(gg.graph, gg.alphabet, options);
  GrepairRun run;
  if (!result.ok()) {
    std::fprintf(stderr, "compress failed on %s: %s\n", gg.name.c_str(),
                 result.status().ToString().c_str());
    return run;
  }
  auto bytes = EncodeGrammar(result.value().grammar);
  auto t1 = std::chrono::steady_clock::now();
  run.bytes = bytes.size();
  run.bpe = BitsPerEdge(bytes.size(), gg.graph.num_edges());
  run.stats = result.value().stats;
  run.grammar = ComputeGrammarStats(result.value().grammar);
  run.seconds = Seconds(t0, t1);
  return run;
}

/// \brief Plain k^2-tree baseline bpe.
inline double RunK2(const GeneratedGraph& gg) {
  size_t bytes = K2CompressedSize(gg.graph, gg.alphabet);
  return BitsPerEdge(bytes, gg.graph.num_edges());
}

inline size_t RunK2Bytes(const GeneratedGraph& gg) {
  return K2CompressedSize(gg.graph, gg.alphabet);
}

/// \brief LM baseline bpe (unlabeled out-adjacency).
inline double RunLm(const GeneratedGraph& gg) {
  auto compressed = LmCompress(gg.graph);
  return BitsPerEdge(compressed.SizeBytes(), gg.graph.num_edges());
}

/// \brief HN baseline bpe (unlabeled out-adjacency).
inline double RunHn(const GeneratedGraph& gg) {
  auto compressed = HnCompress(gg.graph);
  return BitsPerEdge(compressed.SizeBytes(), gg.graph.num_edges());
}

/// \brief Adjacency-list RePair (Claude & Navarro) bpe.
inline double RunAdjRePair(const GeneratedGraph& gg) {
  return BitsPerEdge(AdjListRePairSizeBytes(gg.graph),
                     gg.graph.num_edges());
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void PrintScaleNote(const PaperDataset& d) {
  std::printf("   [%s: stand-in V=%u E=%u, paper V=%llu E=%llu, "
              "edge scale %.3f]\n",
              d.paper.name.c_str(), d.data.graph.num_nodes(),
              d.data.graph.num_edges(),
              static_cast<unsigned long long>(d.paper.nodes),
              static_cast<unsigned long long>(d.paper.edges), d.scale);
}

}  // namespace bench
}  // namespace grepair

#endif  // GREPAIR_BENCH_BENCH_UTIL_H_
