// Micro-benchmarks (google-benchmark): the low-level operations the
// system is built on — k^2-tree construction and queries, rank
// bitvectors, Elias codes, FP refinement and digram shape computation.

#include <benchmark/benchmark.h>

#include "src/datasets/generators.h"
#include "src/graph/node_order.h"
#include "src/grepair/digram.h"
#include "src/k2tree/bitvector.h"
#include "src/k2tree/k2tree.h"
#include "src/util/elias.h"
#include "src/util/rng.h"

namespace grepair {
namespace {

std::vector<std::pair<uint32_t, uint32_t>> RandomCells(uint32_t n,
                                                       uint32_t count,
                                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<uint32_t, uint32_t>> cells;
  cells.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    cells.push_back({static_cast<uint32_t>(rng.UniformBounded(n)),
                     static_cast<uint32_t>(rng.UniformBounded(n))});
  }
  return cells;
}

void BM_K2TreeBuild(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  auto cells = RandomCells(n, n * 8, 42);
  for (auto _ : state) {
    auto tree = K2Tree::Build(n, n, cells);
    benchmark::DoNotOptimize(tree.StorageBits());
  }
  state.SetItemsProcessed(state.iterations() * cells.size());
}
BENCHMARK(BM_K2TreeBuild)->Arg(1 << 10)->Arg(1 << 14);

void BM_K2TreeContains(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  auto tree = K2Tree::Build(n, n, RandomCells(n, n * 8, 42));
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Contains(static_cast<uint32_t>(rng.UniformBounded(n)),
                      static_cast<uint32_t>(rng.UniformBounded(n))));
  }
}
BENCHMARK(BM_K2TreeContains)->Arg(1 << 10)->Arg(1 << 14);

void BM_K2TreeRowNeighbors(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  auto tree = K2Tree::Build(n, n, RandomCells(n, n * 8, 42));
  Rng rng(8);
  for (auto _ : state) {
    auto row = tree.RowNeighbors(
        static_cast<uint32_t>(rng.UniformBounded(n)));
    benchmark::DoNotOptimize(row.size());
  }
}
BENCHMARK(BM_K2TreeRowNeighbors)->Arg(1 << 10)->Arg(1 << 14);

void BM_RankBitVector(benchmark::State& state) {
  RankBitVector bv;
  Rng rng(9);
  for (int i = 0; i < 1 << 20; ++i) bv.PushBack(rng.Bernoulli(0.3));
  bv.Finalize();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bv.Rank1((i * 2654435761u) % bv.size()));
    ++i;
  }
}
BENCHMARK(BM_RankBitVector);

void BM_EliasDeltaRoundTrip(benchmark::State& state) {
  Rng rng(10);
  std::vector<uint64_t> values(4096);
  for (auto& v : values) v = (rng.Next() >> (rng.Next() % 50)) + 1;
  for (auto _ : state) {
    BitWriter w;
    for (uint64_t v : values) EliasDeltaEncode(v, &w);
    BitReader r(w.bytes());
    uint64_t x = 0, sum = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      (void)EliasDeltaDecode(&r, &x);
      sum += x;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_EliasDeltaRoundTrip);

void BM_FpRefinement(benchmark::State& state) {
  auto gg = BarabasiAlbert(static_cast<uint32_t>(state.range(0)), 4, 11);
  for (auto _ : state) {
    auto fp = ComputeFpRefinement(gg.graph);
    benchmark::DoNotOptimize(fp.num_classes);
  }
}
BENCHMARK(BM_FpRefinement)->Arg(1 << 12)->Arg(1 << 15);

void BM_DigramShape(benchmark::State& state) {
  HEdge a, b;
  a.label = 3;
  a.att = {10, 11};
  b.label = 5;
  b.att = {11, 12};
  auto ext = [](NodeId) { return true; };
  DigramShape shape;
  bool swapped;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeDigramShape(a, b, ext, &shape, &swapped));
  }
}
BENCHMARK(BM_DigramShape);

}  // namespace
}  // namespace grepair

BENCHMARK_MAIN();
