// Micro-benchmarks for the compression pipeline itself: gRePair
// end-to-end throughput per workload family, encode/decode/derive, and
// one compression benchmark per registered codec (so every backend's
// throughput is tracked from the same harness — new codecs show up
// here without touching this file).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/api/grepair_api.h"
#include "src/encoding/grammar_coder.h"
#include "src/grepair/compressor.h"

namespace grepair {
namespace {

void BM_CompressRdfTypes(benchmark::State& state) {
  auto gg = RdfTypes(static_cast<uint32_t>(state.range(0)), 30, 1);
  for (auto _ : state) {
    auto result = Compress(gg.graph, gg.alphabet, {});
    benchmark::DoNotOptimize(result.value().stats.output_size);
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_edges());
}
BENCHMARK(BM_CompressRdfTypes)->Arg(10000)->Arg(40000)
    ->Unit(benchmark::kMillisecond);

void BM_CompressCoauthorship(benchmark::State& state) {
  auto gg = CoAuthorship(static_cast<uint32_t>(state.range(0)),
                         static_cast<uint32_t>(state.range(0)) * 2, 2);
  for (auto _ : state) {
    auto result = Compress(gg.graph, gg.alphabet, {});
    benchmark::DoNotOptimize(result.value().stats.output_size);
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_edges());
}
BENCHMARK(BM_CompressCoauthorship)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_CompressCopies(benchmark::State& state) {
  auto gg = DisjointCopies(CycleWithDiagonal(),
                           static_cast<uint32_t>(state.range(0)), "c");
  for (auto _ : state) {
    auto result = Compress(gg.graph, gg.alphabet, {});
    benchmark::DoNotOptimize(result.value().stats.output_size);
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_edges());
}
BENCHMARK(BM_CompressCopies)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_EncodeGrammar(benchmark::State& state) {
  auto gg = RdfEntities(4000, 12, 200, 3);
  auto result = Compress(gg.graph, gg.alphabet, {});
  for (auto _ : state) {
    auto bytes = EncodeGrammar(result.value().grammar);
    benchmark::DoNotOptimize(bytes.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          result.value().grammar.TotalSize());
}
BENCHMARK(BM_EncodeGrammar)->Unit(benchmark::kMillisecond);

void BM_DecodeGrammar(benchmark::State& state) {
  auto gg = RdfEntities(4000, 12, 200, 3);
  auto result = Compress(gg.graph, gg.alphabet, {});
  auto bytes = EncodeGrammar(result.value().grammar);
  for (auto _ : state) {
    auto decoded = DecodeGrammar(bytes);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetBytesProcessed(state.iterations() * bytes.size());
}
BENCHMARK(BM_DecodeGrammar)->Unit(benchmark::kMillisecond);

void BM_DeriveVal(benchmark::State& state) {
  auto gg = DisjointCopies(CycleWithDiagonal(), 4096, "c");
  auto result = Compress(gg.graph, gg.alphabet, {});
  for (auto _ : state) {
    auto val = Derive(result.value().grammar);
    benchmark::DoNotOptimize(val.value().num_edges());
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_edges());
}
BENCHMARK(BM_DeriveVal)->Unit(benchmark::kMillisecond);

// One compress benchmark per registered codec over a shared web-like
// dataset (single label, so the unlabeled baselines participate too).
void BM_CodecCompress(benchmark::State& state, std::string codec_name) {
  auto gg = BarabasiAlbert(2000, 4, 5);
  auto codec = api::CodecRegistry::Create(codec_name).ValueOrDie();
  for (auto _ : state) {
    auto rep = codec->Compress(gg.graph, gg.alphabet);
    if (!rep.ok()) {
      state.SkipWithError(rep.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rep.value()->ByteSize());
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_edges());
}

void RegisterCodecBenchmarks() {
  for (const auto& name : bench::PaperCodecNames()) {
    benchmark::RegisterBenchmark(("BM_CodecCompress/" + name).c_str(),
                                 BM_CodecCompress, name)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace grepair

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  grepair::RegisterCodecBenchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
