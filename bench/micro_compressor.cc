// Micro-benchmarks for the compression pipeline itself: gRePair
// end-to-end throughput per workload family, occurrence counting, and
// the pruning pass.

#include <benchmark/benchmark.h>

#include "src/datasets/generators.h"
#include "src/encoding/grammar_coder.h"
#include "src/grepair/compressor.h"

namespace grepair {
namespace {

void BM_CompressRdfTypes(benchmark::State& state) {
  auto gg = RdfTypes(static_cast<uint32_t>(state.range(0)), 30, 1);
  for (auto _ : state) {
    auto result = Compress(gg.graph, gg.alphabet, {});
    benchmark::DoNotOptimize(result.value().stats.output_size);
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_edges());
}
BENCHMARK(BM_CompressRdfTypes)->Arg(10000)->Arg(40000)
    ->Unit(benchmark::kMillisecond);

void BM_CompressCoauthorship(benchmark::State& state) {
  auto gg = CoAuthorship(static_cast<uint32_t>(state.range(0)),
                         static_cast<uint32_t>(state.range(0)) * 2, 2);
  for (auto _ : state) {
    auto result = Compress(gg.graph, gg.alphabet, {});
    benchmark::DoNotOptimize(result.value().stats.output_size);
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_edges());
}
BENCHMARK(BM_CompressCoauthorship)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_CompressCopies(benchmark::State& state) {
  auto gg = DisjointCopies(CycleWithDiagonal(),
                           static_cast<uint32_t>(state.range(0)), "c");
  for (auto _ : state) {
    auto result = Compress(gg.graph, gg.alphabet, {});
    benchmark::DoNotOptimize(result.value().stats.output_size);
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_edges());
}
BENCHMARK(BM_CompressCopies)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_EncodeGrammar(benchmark::State& state) {
  auto gg = RdfEntities(4000, 12, 200, 3);
  auto result = Compress(gg.graph, gg.alphabet, {});
  for (auto _ : state) {
    auto bytes = EncodeGrammar(result.value().grammar);
    benchmark::DoNotOptimize(bytes.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          result.value().grammar.TotalSize());
}
BENCHMARK(BM_EncodeGrammar)->Unit(benchmark::kMillisecond);

void BM_DecodeGrammar(benchmark::State& state) {
  auto gg = RdfEntities(4000, 12, 200, 3);
  auto result = Compress(gg.graph, gg.alphabet, {});
  auto bytes = EncodeGrammar(result.value().grammar);
  for (auto _ : state) {
    auto decoded = DecodeGrammar(bytes);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetBytesProcessed(state.iterations() * bytes.size());
}
BENCHMARK(BM_DecodeGrammar)->Unit(benchmark::kMillisecond);

void BM_DeriveVal(benchmark::State& state) {
  auto gg = DisjointCopies(CycleWithDiagonal(), 4096, "c");
  auto result = Compress(gg.graph, gg.alphabet, {});
  for (auto _ : state) {
    auto val = Derive(result.value().grammar);
    benchmark::DoNotOptimize(val.value().num_edges());
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_edges());
}
BENCHMARK(BM_DeriveVal)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace grepair

BENCHMARK_MAIN();
