// Table V: RDF graphs — gRePair vs k2-tree, size in KB.
//
// Paper shape: gRePair always smaller; on the instance-types graphs it
// is orders of magnitude smaller (the star pattern collapses into a
// handful of rules), moderate wins elsewhere. Both compressors run
// through the codec registry; the unlabeled baselines (LM/HN) report
// not-applicable on these labeled graphs, matching the paper.

#include <cstdio>

#include "bench/bench_util.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  // Paper's Table V (KB): columns 1..6.
  const double paper_grepair[6] = {1271, 1, 3, 267, 30, 872};
  const double paper_k2[6] = {2731, 590, 938, 1119, 52, 988};

  std::printf("Table V: RDF graphs, size in KB (ours; paper in parens)\n");
  std::printf("%-24s %16s %16s %8s\n", "graph", "gRePair", "k2-tree",
              "ratio");
  auto names = RdfGraphNames();
  int wins = 0;
  int big_wins = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    PaperDataset d = MakePaperDataset(names[i]);
    CodecRun grepair_run = RunCodec("grepair", d.data);
    CodecRun k2_run = RunCodec("k2", d.data);
    double ours_kb = grepair_run.bytes / 1024.0;
    double k2_kb = k2_run.bytes / 1024.0;
    double ratio = ours_kb > 0 ? k2_kb / ours_kb : 0;
    if (grepair_run.bytes < k2_run.bytes) ++wins;
    if (ratio > 20) ++big_wins;
    std::printf("%-24s %7.1f (%6.0f) %7.1f (%6.0f) %7.1fx\n",
                names[i].c_str(), ours_kb, paper_grepair[i], k2_kb,
                paper_k2[i], ratio);
  }
  std::printf("\nshape: gRePair smaller on %d/%zu (paper: 6/6); "
              "orders-of-magnitude on %d graphs "
              "(paper: the types graphs)\n",
              wins, names.size(), big_wins);
  return 0;
}
