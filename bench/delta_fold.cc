// Overlay and fold overhead on the hot query path.
//
// A mutable corpus answers queries through a delta overlay until the
// background fold drains it into the shard grammars. The serving story
// only holds together if the overlay is cheap: this bench measures
// warm batched out-neighbor throughput on a sharded corpus (a) before
// any edits, (b) with a live overlay, and (c) after FoldOverlay, and
// GATES on (b) <= 1.5x (a). CI runs this on every Release build and
// uploads the JSON next to the other bench artifacts, so an overlay
// regression shows up as a red build, not a slow quarter.
//
//   bench_delta_fold [--json out.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "src/shard/delta_overlay.h"

using namespace grepair;
using namespace grepair::bench;

namespace {

constexpr double kGateRatio = 1.5;
constexpr int kTrials = 7;
constexpr uint32_t kEdits = 256;

// Minimum-of-kTrials wall time for one full batch sweep, in seconds.
// Minimum (not mean) because we are gating: transient scheduler noise
// must not fail the build, only a real per-query regression should.
double SweepSeconds(const api::CompressedRep& rep,
                    const std::vector<uint64_t>& nodes) {
  double best = 1e30;
  for (int t = 0; t < kTrials; ++t) {
    auto start = std::chrono::steady_clock::now();
    auto result = rep.OutNeighborsBatch(nodes);
    double s = Seconds(start, std::chrono::steady_clock::now());
    if (!result.ok()) {
      std::fprintf(stderr, "batch query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    best = std::min(best, s);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  GeneratedGraph gg = BarabasiAlbert(4000, 8, 71);
  const uint64_t n = gg.graph.num_nodes();
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "4");
  options.Set("threads", "4");
  auto compressed = codec->Compress(gg.graph, gg.alphabet, options);
  if (!compressed.ok()) {
    std::fprintf(stderr, "compress failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  auto* rep = dynamic_cast<shard::ShardedRep*>(compressed.value().get());

  std::vector<uint64_t> nodes(n);
  for (uint64_t v = 0; v < n; ++v) nodes[v] = v;

  // (a) warm base: the first sweep pays shard decoding, the timed
  // sweeps run against cached CSRs — the steady serving state.
  (void)rep->OutNeighborsBatch(nodes);
  double base_s = SweepSeconds(*rep, nodes);

  // (b) live overlay: half deletes of real edges, half fresh adds,
  // spread across the id space so many batch rows pay the merge.
  std::mt19937_64 rng(1234);
  std::vector<shard::EdgeEdit> edits;
  const auto& edge_list = gg.graph.edges();
  while (edits.size() < kEdits / 2 && !edge_list.empty()) {
    const HEdge& e = edge_list[rng() % edge_list.size()];
    if (e.att.size() == 2) {
      edits.push_back(shard::EdgeEdit::Delete(e.att[0], e.att[1]));
    }
  }
  while (edits.size() < kEdits) {
    uint64_t u = rng() % n, v = rng() % n;
    if (u != v) edits.push_back(shard::EdgeEdit::Add(u, v, 0));
  }
  auto applied = rep->ApplyEdits(edits);
  if (!applied.ok()) {
    std::fprintf(stderr, "ApplyEdits failed: %s\n",
                 applied.ToString().c_str());
    return 1;
  }
  (void)rep->OutNeighborsBatch(nodes);
  double overlay_s = SweepSeconds(*rep, nodes);

  // (c) fold, then re-measure: the overlay is gone, queries should be
  // back at (or near) base cost.
  auto fold_start = std::chrono::steady_clock::now();
  auto folded = rep->FoldOverlay();
  double fold_s = Seconds(fold_start, std::chrono::steady_clock::now());
  if (!folded.ok()) {
    std::fprintf(stderr, "FoldOverlay failed: %s\n",
                 folded.ToString().c_str());
    return 1;
  }
  (void)rep->OutNeighborsBatch(nodes);
  double postfold_s = SweepSeconds(*rep, nodes);

  double ratio = overlay_s / base_s;
  double to_ns = 1e9 / (double)n;
  api::QueryStats stats = rep->query_stats();

  PrintHeader("delta overlay / fold overhead (sharded:grepair, "
              "BA 4000x8, 256 edits)");
  std::printf("%-28s %10.1f ns/query\n", "warm base batch",
              base_s * to_ns);
  std::printf("%-28s %10.1f ns/query  (%.2fx base)\n",
              "warm overlay batch", overlay_s * to_ns, ratio);
  std::printf("%-28s %10.1f ns/query\n", "post-fold batch",
              postfold_s * to_ns);
  std::printf("%-28s %10.3f s  (%llu edits folded)\n", "fold",
              fold_s, (unsigned long long)stats.folded_edits);
  bool pass = ratio <= kGateRatio;
  std::printf("gate: overlay <= %.1fx base — %s\n", kGateRatio,
              pass ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    JsonWriter json;
    json.Add("num_nodes", n);
    json.Add("edits", (uint64_t)kEdits);
    json.Add("base_ns_per_query", base_s * to_ns);
    json.Add("overlay_ns_per_query", overlay_s * to_ns);
    json.Add("postfold_ns_per_query", postfold_s * to_ns);
    json.Add("overlay_over_base_ratio", ratio);
    json.Add("fold_seconds", fold_s);
    json.Add("folded_edits", stats.folded_edits);
    json.Add("shard_folds", stats.shard_folds);
    json.Add("gate_ratio", kGateRatio);
    json.Add("gate_pass", pass ? 1 : 0);
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return pass ? 0 : 1;
}
