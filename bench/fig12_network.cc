// Figure 12: network graphs — gRePair vs k2-tree vs LM vs HN (bpe).
//
// Paper shape: gRePair beats the plain k2-tree on all graphs except
// NotreDame, but generally loses to LM and HN on network graphs
// (Email-EuAll and CA-GrQc being its exceptions). We additionally print
// the adjacency-list RePair baseline the paper mentions and omits.

#include <cstdio>

#include "bench/bench_util.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  std::printf("Figure 12: network graphs, bpe by compressor\n");
  std::printf("%-14s %9s %9s %9s %9s %9s   %s\n", "graph", "gRePair",
              "k2-tree", "LM", "HN", "adjRP", "gRePair<=k2?");
  int grepair_beats_k2 = 0;
  int lm_or_hn_beats_grepair = 0;
  auto names = NetworkGraphNames();
  for (const auto& name : names) {
    PaperDataset d = MakePaperDataset(name);
    GrepairRun run = RunGrepair(d.data);
    double k2 = RunK2(d.data);
    double lm = RunLm(d.data);
    double hn = RunHn(d.data);
    double rp = RunAdjRePair(d.data);
    bool beats_k2 = run.bpe <= k2 + 1e-9;
    if (beats_k2) ++grepair_beats_k2;
    if (lm < run.bpe || hn < run.bpe) ++lm_or_hn_beats_grepair;
    std::printf("%-14s %9.2f %9.2f %9.2f %9.2f %9.2f   %s\n", name.c_str(),
                run.bpe, k2, lm, hn, rp, beats_k2 ? "yes" : "no");
  }
  std::printf("\nshape: gRePair <= k2 on %d/%zu graphs (paper: 7/8); "
              "LM or HN beat gRePair on %d/%zu (paper: 6/8)\n",
              grepair_beats_k2, names.size(), lm_or_hn_beats_grepair,
              names.size());
  return 0;
}
