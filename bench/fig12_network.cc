// Figure 12: network graphs — every registered codec, bpe.
//
// Paper shape: gRePair beats the plain k2-tree on all graphs except
// NotreDame, but generally loses to LM and HN on network graphs
// (Email-EuAll and CA-GrQc being its exceptions). The codec set comes
// from the CodecRegistry, so newly registered compressors show up in
// this table automatically (the paper-era fixed columns included the
// adjacency-list RePair baseline the paper mentions and omits).

#include <cstdio>
#include <map>

#include "bench/bench_util.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  auto codecs = PaperCodecNames();
  std::printf("Figure 12: network graphs, bpe by registered codec\n");
  std::printf("%-14s", "graph");
  for (const auto& codec : codecs) std::printf(" %10s", codec.c_str());
  std::printf("   %s\n", "gRePair<=k2?");

  int grepair_beats_k2 = 0;
  int lm_or_hn_beats_grepair = 0;
  auto names = NetworkGraphNames();
  for (const auto& name : names) {
    PaperDataset d = MakePaperDataset(name);
    std::map<std::string, CodecRun> runs;
    for (const auto& codec : codecs) runs[codec] = RunCodec(codec, d.data);
    bool comparable = runs["grepair"].ok && runs["k2"].ok;
    bool beats_k2 =
        comparable && runs["grepair"].bpe <= runs["k2"].bpe + 1e-9;
    if (beats_k2) ++grepair_beats_k2;
    if (runs["grepair"].ok &&
        ((runs["lm"].ok && runs["lm"].bpe < runs["grepair"].bpe) ||
         (runs["hn"].ok && runs["hn"].bpe < runs["grepair"].bpe))) {
      ++lm_or_hn_beats_grepair;
    }
    std::printf("%-14s", name.c_str());
    for (const auto& codec : codecs) {
      if (runs[codec].ok) {
        std::printf(" %10.2f", runs[codec].bpe);
      } else {
        std::printf(" %10s", "n/a");
      }
    }
    std::printf("   %s\n",
                comparable ? (beats_k2 ? "yes" : "no") : "n/a");
  }
  std::printf("\nshape: gRePair <= k2 on %d/%zu graphs (paper: 7/8); "
              "LM or HN beat gRePair on %d/%zu (paper: 6/8)\n",
              grepair_beats_k2, names.size(), lm_or_hn_beats_grepair,
              names.size());
  return 0;
}
