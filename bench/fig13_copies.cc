// Figure 13: disjoint unions of 8..4096 identical copies of a 4-node,
// 5-edge graph (directed cycle + one diagonal), output size in bytes.
//
// Paper shape (log-log): gRePair's size stays nearly flat
// ("exponential compression": the grammar grows ~logarithmically) while
// k2-tree / LM / HN grow linearly with the input.

#include <cstdio>

#include "bench/bench_util.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  GeneratedGraph unit = CycleWithDiagonal();
  std::printf("Figure 13: n identical copies of a 5-edge graph, "
              "output bytes\n");
  std::printf("%6s %9s %9s %9s %9s %9s\n", "copies", "edges", "gRePair",
              "k2-tree", "LM", "HN");
  size_t first_grepair = 0, last_grepair = 0;
  size_t first_k2 = 0, last_k2 = 0;
  for (uint32_t copies = 8; copies <= 4096; copies *= 2) {
    GeneratedGraph g =
        DisjointCopies(unit, copies, "c" + std::to_string(copies));
    GrepairRun run = RunGrepair(g);
    size_t k2 = RunK2Bytes(g);
    CodecRun lm = RunCodec("lm", g);
    CodecRun hn = RunCodec("hn", g);
    std::printf("%6u %9u %9zu %9zu %9zu %9zu\n", copies,
                g.graph.num_edges(), run.bytes, k2, lm.bytes, hn.bytes);
    if (copies == 8) {
      first_grepair = run.bytes;
      first_k2 = k2;
    }
    last_grepair = run.bytes;
    last_k2 = k2;
  }
  double growth_grepair =
      static_cast<double>(last_grepair) / first_grepair;
  double growth_k2 = static_cast<double>(last_k2) / first_k2;
  std::printf("\n8 -> 4096 copies (512x input): gRePair grew %.1fx, "
              "k2-tree grew %.1fx\n", growth_grepair, growth_k2);
  std::printf("shape: %s (paper: gRePair orders of magnitude below the "
              "others, near-flat growth)\n",
              growth_grepair * 10 < growth_k2 ? "OK" : "MISMATCH");
  return 0;
}
