// Decode throughput: word-at-a-time decode engine vs the retained
// bit-at-a-time scalar path, on the per-shard decode of a 16-shard
// dblp container.
//
//   decode_throughput [--size N] [--shards K] [--iters I]
//                     [--min-speedup X] [--dir PATH] [--json OUT]
//
// For each container codec, builds a GRSHARD2 container over the same
// dblp graph, slices the per-shard payload spans out of its footer
// directory (the exact bytes a shard fault hands the inner codec), and
// times repeated inner-codec deserialization twice: once with the fast
// clz/Peek64 word-at-a-time readers, and once with every decode routed
// through the retained bit-at-a-time path via
// SetEliasDecodeScalarForTest (scalar Elias decoders plus the per-bit
// k2 bitmap loop). Decoded answers are verified byte-identical
// (re-serialization and decompressed graphs) between the two modes
// before any number is printed.
//
// The gate runs on the sharded:k2 container, whose shard decode is
// bit-stream bound end to end (Elias headers + k^2-tree bitmaps + a
// rank directory over the loaded words), so the fast-vs-scalar ratio
// measures the decode engine itself. The sharded:grepair container is
// reported alongside for context: grammar deserialization spends most
// of its time materializing rules and indexes, which the decode engine
// does not touch, so its end-to-end ratio sits near 1x by design.
//
// Also reports an informational cold/warm whole-container sweep (open
// + batch query, first touch vs cached) so the shard-cache win stays
// visible next to the raw decode win.
//
// Exits nonzero when the fast k2 decode is not at least --min-speedup
// times the scalar edges/sec (default 2; --min-speedup 0 waives the
// gate, matching the remote_throughput pattern). The margin is
// structural — one ReadBits+PushWord per 64 bits vs one branch per
// bit — so it holds on noisy shared runners.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/shard/sharded_codec.h"
#include "src/util/elias.h"
#include "src/util/mmap_file.h"

using namespace grepair;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: decode_throughput [--size N] [--shards K] [--iters I]\n"
               "                         [--min-speedup X] [--dir PATH]\n"
               "                         [--json OUT]\n");
  return 2;
}

// One container codec's sliced payloads, ready to decode repeatedly.
struct Prepared {
  std::string codec_name;
  std::vector<uint8_t> container;
  std::vector<std::vector<uint8_t>> payloads;
  std::unique_ptr<api::GraphCodec> inner;
  uint64_t edges_per_pass = 0;
};

// Decodes every shard payload once; returns false on any failure.
// `out_reps` (optional) receives the decoded reps for verification.
bool DecodeAllShards(
    api::GraphCodec* inner,
    const std::vector<std::vector<uint8_t>>& payloads,
    std::vector<std::unique_ptr<api::CompressedRep>>* out_reps) {
  for (const auto& payload : payloads) {
    auto rep = inner->Deserialize(payload);
    if (!rep.ok()) {
      std::fprintf(stderr, "shard decode failed: %s\n",
                   rep.status().ToString().c_str());
      return false;
    }
    if (out_reps != nullptr) {
      out_reps->push_back(std::move(rep).ValueOrDie());
    }
  }
  return true;
}

// Compresses the graph with `codec_name`, slices the per-shard payload
// spans out of the GRSHARD2 footer directory, and verifies that fast
// and scalar decode agree byte for byte on every shard.
bool Prepare(const GeneratedGraph& gg, const std::string& codec_name,
             int shards, Prepared* out) {
  auto codec = api::CodecRegistry::Create(codec_name).ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", std::to_string(shards));
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  if (!rep.ok()) {
    std::fprintf(stderr, "%s compress: %s\n", codec_name.c_str(),
                 rep.status().ToString().c_str());
    return false;
  }
  auto* sharded = dynamic_cast<shard::ShardedRep*>(rep.value().get());
  if (sharded == nullptr) {
    std::fprintf(stderr, "%s: rep is not sharded\n", codec_name.c_str());
    return false;
  }
  out->codec_name = codec_name;
  out->container = sharded->SerializeV2();

  uint64_t dir_off = 0;
  auto region = shard::LocateV2DirectoryRegion(
      ByteSpan(out->container.data(), out->container.size()), &dir_off);
  if (!region.ok()) {
    std::fprintf(stderr, "%s\n", region.status().ToString().c_str());
    return false;
  }
  auto parsed = shard::ParseV2Directory(region.value(), dir_off);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return false;
  }
  for (const auto& row : parsed.value().rows) {
    if (row.length == 0) continue;  // edgeless shard: nothing to decode
    out->payloads.emplace_back(out->container.begin() + row.offset,
                               out->container.begin() + row.offset +
                                   row.length);
  }
  auto inner = api::CodecRegistry::Create(parsed.value().inner_name);
  if (!inner.ok()) {
    std::fprintf(stderr, "%s\n", inner.status().ToString().c_str());
    return false;
  }
  out->inner = std::move(inner).ValueOrDie();

  // Verification pass: decode every shard under both modes; the
  // decompressed graphs and re-serializations must be byte-identical.
  std::vector<std::unique_ptr<api::CompressedRep>> fast_reps, scalar_reps;
  if (!DecodeAllShards(out->inner.get(), out->payloads, &fast_reps)) {
    return false;
  }
  SetEliasDecodeScalarForTest(true);
  bool scalar_ok =
      DecodeAllShards(out->inner.get(), out->payloads, &scalar_reps);
  SetEliasDecodeScalarForTest(false);
  if (!scalar_ok) return false;
  out->edges_per_pass = 0;
  for (size_t i = 0; i < fast_reps.size(); ++i) {
    if (fast_reps[i]->Serialize() != scalar_reps[i]->Serialize()) {
      std::fprintf(stderr,
                   "FAIL: %s shard %zu re-serializes differently under "
                   "the scalar oracle\n", codec_name.c_str(), i);
      return false;
    }
    auto fast_graph = fast_reps[i]->Decompress();
    auto scalar_graph = scalar_reps[i]->Decompress();
    if (!fast_graph.ok() || !scalar_graph.ok() ||
        !fast_graph.value().EqualUpToEdgeOrder(scalar_graph.value())) {
      std::fprintf(stderr,
                   "FAIL: %s shard %zu decodes differently under the "
                   "scalar oracle\n", codec_name.c_str(), i);
      return false;
    }
    out->edges_per_pass += fast_graph.value().num_edges();
  }
  std::printf("%s: verified %zu shard payloads byte-identical fast vs "
              "scalar (%llu edges per pass)\n",
              codec_name.c_str(), out->payloads.size(),
              (unsigned long long)out->edges_per_pass);
  return true;
}

// Repeats the all-shard decode `iters` times, returning
// decodes-per-second worth of edges.
double MeasureEdgesPerSec(const Prepared& p, int iters) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    if (!DecodeAllShards(p.inner.get(), p.payloads, nullptr)) return 0.0;
  }
  auto t1 = std::chrono::steady_clock::now();
  double secs = bench::Seconds(t0, t1);
  return secs > 0 ? static_cast<double>(p.edges_per_pass) * iters / secs
                  : 0.0;
}

// Warmup + timed A/B; returns fast/scalar edges-per-second.
bool MeasureBoth(const Prepared& p, int iters, double* fast_eps,
                 double* scalar_eps) {
  MeasureEdgesPerSec(p, 2);
  *fast_eps = MeasureEdgesPerSec(p, iters);
  SetEliasDecodeScalarForTest(true);
  *scalar_eps = MeasureEdgesPerSec(p, iters);
  SetEliasDecodeScalarForTest(false);
  return *fast_eps > 0 && *scalar_eps > 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t size = 8;  // dblp version count
  int shards = 16;
  int iters = 30;
  double min_speedup = 2.0;
  std::string dir = "/tmp";
  std::string json_path;
  char* end = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1 || v > 100000) {
        return Usage();
      }
      size = static_cast<uint32_t>(v);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1 || v > 256) {
        return Usage();
      }
      shards = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1 || v > 100000) {
        return Usage();
      }
      iters = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      double v = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || v < 0.0) return Usage();
      min_speedup = v;
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return Usage();
    }
  }

  GeneratedGraph gg = DblpVersions(size, 200, 100, 1, "dblp");
  std::printf("dataset %s: %u nodes, %u edges; %d shards\n",
              gg.name.c_str(), gg.graph.num_nodes(), gg.graph.num_edges(),
              shards);

  Prepared k2, grepair_c;
  if (!Prepare(gg, "sharded:k2", shards, &k2)) return 1;
  if (!Prepare(gg, "sharded:grepair", shards, &grepair_c)) return 1;

  double k2_fast = 0, k2_scalar = 0, gr_fast = 0, gr_scalar = 0;
  if (!MeasureBoth(k2, iters, &k2_fast, &k2_scalar)) return 1;
  if (!MeasureBoth(grepair_c, iters, &gr_fast, &gr_scalar)) return 1;

  std::printf("%-24s %14s %14s %8s\n", "shard decode", "scalar e/s",
              "fast e/s", "speedup");
  std::printf("%-24s %14.0f %14.0f %7.2fx\n", "sharded:k2 (gated)",
              k2_scalar, k2_fast, k2_fast / k2_scalar);
  std::printf("%-24s %14.0f %14.0f %7.2fx\n", "sharded:grepair (info)",
              gr_scalar, gr_fast, gr_fast / gr_scalar);

  // Informational: whole-container cold vs warm query sweep (decode +
  // shard cache, the layers above the raw decode).
  std::string path = dir + "/decode_throughput_v2.bin";
  auto wrote = WriteFileBytes(
      path, api::WrapCodecPayload("sharded:k2", k2.container));
  if (wrote.ok()) {
    auto opened = api::OpenCompressedFile(path);
    if (opened.ok()) {
      std::vector<uint64_t> sweep;
      uint64_t n = gg.graph.num_nodes();
      for (int q = 0; q < 256; ++q) {
        sweep.push_back((n * static_cast<uint64_t>(q)) / 256);
      }
      auto c0 = std::chrono::steady_clock::now();
      auto cold = opened.value()->OutNeighborsBatch(sweep);
      auto c1 = std::chrono::steady_clock::now();
      auto warm = opened.value()->OutNeighborsBatch(sweep);
      auto c2 = std::chrono::steady_clock::now();
      if (cold.ok() && warm.ok()) {
        std::printf("container sweep (256 queries): cold %.3f ms, warm "
                    "%.3f ms\n", bench::Seconds(c0, c1) * 1e3,
                    bench::Seconds(c1, c2) * 1e3);
      }
    }
    std::remove(path.c_str());
  }

  double speedup = k2_fast / k2_scalar;
  std::printf("decode speedup (fast vs scalar, sharded:k2): %.2fx "
              "(gate >= %.1fx)\n", speedup, min_speedup);
  if (!json_path.empty()) {
    bench::JsonWriter json;
    json.Add("bench", std::string("decode_throughput"));
    json.Add("dataset", gg.name);
    json.Add("shards", shards);
    json.Add("iters", iters);
    json.Add("k2_scalar_edges_per_sec", k2_scalar);
    json.Add("k2_fast_edges_per_sec", k2_fast);
    json.Add("k2_speedup", speedup);
    json.Add("grepair_scalar_edges_per_sec", gr_scalar);
    json.Add("grepair_fast_edges_per_sec", gr_fast);
    json.Add("grepair_speedup", gr_scalar > 0 ? gr_fast / gr_scalar : 0.0);
    json.Add("min_speedup", min_speedup);
    if (!json.WriteTo(json_path)) return 1;
  }
  if (min_speedup == 0.0) {
    std::printf("PASS (gate waived)\n");
    return 0;
  }
  if (speedup < min_speedup) {
    std::printf("FAIL: decode speedup %.2fx below the %.1fx gate\n",
                speedup, min_speedup);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
