// Remote shard-fault throughput through the multiplexed connection
// pool, and the SSD tier's cold/warm split.
//
//   remote_throughput [--size N] [--shards K] [--threads T]
//                     [--delay-ms D] [--min-pool-speedup X] [--dir PATH]
//
// Serves one sharded:grepair corpus from an in-process ShardServer
// with a netem-style per-request service delay (--delay-ms, default
// 10) so shard faults are latency-bound the way a real SSD/WAN hop is
// — without the delay, loopback RTT is microseconds and every pool
// size measures the same CPU-bound copy loop. Against that server it
// measures cold fault throughput at pool sizes 1, 4 and 8 (eight
// client threads striped over the node space in every run, so only
// the pool width varies), then two tiered passes:
//
//   * cold + SSD cache  — every fault goes remote and lands on disk
//   * SSD-warm          — a fresh client over the same cache directory;
//                         the run FAILS unless remote_fetches == 0
//
// Exits nonzero when pool 8 is not at least --min-pool-speedup times
// the pool-1 fault throughput (default 3; pass 0 to disable the gate
// on machines where the structural margin does not hold), when any
// answer differs from the local truth, or when the warm pass touches
// the network.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/pool.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"

using namespace grepair;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: remote_throughput [--size N] [--shards K] "
               "[--threads T]\n"
               "                         [--delay-ms D] "
               "[--min-pool-speedup X] [--dir PATH]\n");
  return 2;
}

struct RunResult {
  double seconds = 0;
  uint64_t remote_fetches = 0;
  uint64_t remote_bytes = 0;
  uint64_t tier_warm_hits = 0;
  uint64_t tier_cold_fetches = 0;
  uint64_t pool_peak_in_flight = 0;
  uint64_t wrong_answers = 0;
};

// One cold client run: open a fresh rep against `target`, stripe the
// node space over `threads` query threads, and compare every answer
// to `truth`. A fresh rep means a fresh pool and empty in-memory shard
// cache, so all shard faults in this run cross the wire (or hit the
// SSD tier when `options` carries a cache dir).
Result<RunResult> RunClient(const std::string& target,
                            const serve::OpenOptions& options, int threads,
                            const std::vector<std::vector<uint64_t>>& truth) {
  auto rep = serve::OpenRemoteContainer(target, options);
  if (!rep.ok()) return rep.status();

  std::atomic<uint64_t> wrong{0};
  std::atomic<bool> failed{false};
  auto t0 = std::chrono::steady_clock::now();
  // Block-partition the node space: shard membership correlates with
  // node-id ranges, so contiguous blocks keep the threads faulting
  // *different* shards concurrently (an interleaved stripe would make
  // every thread start on the same hub shards and serialize on the
  // single-flight fetch).
  std::vector<std::thread> workers;
  uint64_t n = truth.size();
  for (int t = 0; t < threads; ++t) {
    uint64_t begin = n * static_cast<uint64_t>(t) / threads;
    uint64_t stop = n * (static_cast<uint64_t>(t) + 1) / threads;
    workers.emplace_back([&, begin, stop] {
      for (uint64_t v = begin; v < stop; ++v) {
        auto r = rep.value()->OutNeighbors(v);
        if (!r.ok()) {
          failed.store(true);
          return;
        }
        if (r.value() != truth[v]) wrong.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  auto t1 = std::chrono::steady_clock::now();
  if (failed.load()) {
    return Status::Internal("a query thread hit a transport error");
  }

  auto stats = rep.value()->query_stats();
  RunResult result;
  result.seconds = bench::Seconds(t0, t1);
  result.remote_fetches = stats.remote_fetches;
  result.remote_bytes = stats.remote_bytes;
  result.tier_warm_hits = stats.tier_warm_hits;
  result.tier_cold_fetches = stats.tier_cold_fetches;
  result.pool_peak_in_flight = stats.pool_peak_in_flight;
  result.wrong_answers = wrong.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t size = 3000;
  int shards = 32;
  int threads = 8;
  int delay_ms = 10;
  double min_pool_speedup = 3.0;
  std::string dir = "/tmp";
  char* end = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 16 || v > 1000000) {
        return Usage();
      }
      size = static_cast<uint32_t>(v);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 2 || v > 256) {
        return Usage();
      }
      shards = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1 || v > 64) {
        return Usage();
      }
      threads = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--delay-ms") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 0 || v > 1000) {
        return Usage();
      }
      delay_ms = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--min-pool-speedup") == 0 &&
               i + 1 < argc) {
      double v = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || v < 0.0) return Usage();
      min_pool_speedup = v;
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else {
      return Usage();
    }
  }

  GeneratedGraph gg = BarabasiAlbert(size, 3, 4242);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions copts;
  copts.Set("shards", std::to_string(shards));
  auto rep = codec->Compress(gg.graph, gg.alphabet, copts);
  if (!rep.ok()) {
    std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
    return 1;
  }
  std::vector<uint8_t> container =
      dynamic_cast<shard::ShardedRep*>(rep.value().get())->SerializeV2();

  // Local truth for every node, from an in-process open of the same
  // bytes — every remote answer is checked against this.
  auto local = shard::ShardedRep::Deserialize(SpanOf(container));
  if (!local.ok()) {
    std::fprintf(stderr, "%s\n", local.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<uint64_t>> truth(gg.graph.num_nodes());
  for (uint64_t v = 0; v < truth.size(); ++v) {
    auto r = local.value()->OutNeighbors(v);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    truth[v] = r.value();
  }

  serve::CorpusRegistry registry;
  Status added = registry.AddBytes("bench", SpanOf(container));
  if (!added.ok()) {
    std::fprintf(stderr, "%s\n", added.ToString().c_str());
    return 1;
  }
  serve::ShardServer::Options sopts;
  sopts.debug_shard_delay_ms = delay_ms;
  auto server = serve::ShardServer::Start(std::move(registry), sopts);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  std::string target = server.value()->host_port() + "/bench";
  std::printf(
      "corpus: %u nodes, %u edges, %d shards, %zu container bytes; "
      "%d ms simulated service delay, %d query threads\n",
      gg.graph.num_nodes(), gg.graph.num_edges(), shards, container.size(),
      delay_ms, threads);

  // --- Pool sweep: cold faults at widths 1, 4, 8 -------------------
  const int kPools[] = {1, 4, 8};
  double per_pool_throughput[3] = {0, 0, 0};
  std::printf("%-12s %10s %12s %14s %14s\n", "", "time", "faults",
              "faults/sec", "peak in-flight");
  for (int p = 0; p < 3; ++p) {
    serve::OpenOptions options;
    options.pool_size = kPools[p];
    auto run = RunClient(target, options, threads, truth);
    if (!run.ok()) {
      std::fprintf(stderr, "pool %d: %s\n", kPools[p],
                   run.status().ToString().c_str());
      return 1;
    }
    if (run.value().wrong_answers != 0) {
      std::fprintf(stderr, "FAIL: pool %d returned %llu wrong answers\n",
                   kPools[p],
                   (unsigned long long)run.value().wrong_answers);
      return 1;
    }
    per_pool_throughput[p] =
        run.value().seconds > 0
            ? static_cast<double>(run.value().remote_fetches) /
                  run.value().seconds
            : 0.0;
    char label[32];
    std::snprintf(label, sizeof label, "pool %d", kPools[p]);
    std::printf("%-12s %8.1f ms %12llu %14.1f %14llu\n", label,
                run.value().seconds * 1e3,
                (unsigned long long)run.value().remote_fetches,
                per_pool_throughput[p],
                (unsigned long long)run.value().pool_peak_in_flight);
  }
  double speedup = per_pool_throughput[0] > 0
                       ? per_pool_throughput[2] / per_pool_throughput[0]
                       : 0.0;
  std::printf("pool 8 vs pool 1 fault throughput: %.1fx (gate >= %.1fx)\n",
              speedup, min_pool_speedup);

  // --- SSD tier: cold populate, then a warm run that must never ----
  // --- touch the network -------------------------------------------
  std::string cache_dir = dir + "/remote_throughput_ssd_cache";
  std::filesystem::remove_all(cache_dir);
  serve::OpenOptions tier_options;
  tier_options.pool_size = 8;
  tier_options.ssd_cache_dir = cache_dir;
  auto cold = RunClient(target, tier_options, threads, truth);
  if (!cold.ok() || cold.value().wrong_answers != 0) {
    std::fprintf(stderr, "SSD cold run failed\n");
    return 1;
  }
  auto warm = RunClient(target, tier_options, threads, truth);
  std::filesystem::remove_all(cache_dir);
  if (!warm.ok() || warm.value().wrong_answers != 0) {
    std::fprintf(stderr, "SSD warm run failed\n");
    return 1;
  }
  std::printf(
      "ssd cold: %8.1f ms, %llu remote fetches (%llu bytes), %llu tier "
      "cold\n",
      cold.value().seconds * 1e3,
      (unsigned long long)cold.value().remote_fetches,
      (unsigned long long)cold.value().remote_bytes,
      (unsigned long long)cold.value().tier_cold_fetches);
  std::printf(
      "ssd warm: %8.1f ms, %llu remote fetches, %llu tier warm hits "
      "(%.1fx cold run)\n",
      warm.value().seconds * 1e3,
      (unsigned long long)warm.value().remote_fetches,
      (unsigned long long)warm.value().tier_warm_hits,
      warm.value().seconds > 0 ? cold.value().seconds / warm.value().seconds
                               : 0.0);
  if (warm.value().remote_fetches != 0) {
    std::fprintf(stderr,
                 "FAIL: SSD-warm run fetched %llu shards remotely "
                 "(expected 0)\n",
                 (unsigned long long)warm.value().remote_fetches);
    return 1;
  }
  if (min_pool_speedup > 0 && speedup < min_pool_speedup) {
    std::fprintf(stderr,
                 "FAIL: pool-8 fault throughput only %.1fx pool 1 "
                 "(gate %.1fx; rerun with --min-pool-speedup 0 to waive)\n",
                 speedup, min_pool_speedup);
    return 1;
  }
  std::printf("remote_throughput: OK\n");
  return 0;
}
