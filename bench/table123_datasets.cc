// Tables I-III: dataset statistics — |V|, |E|, |Sigma| and the number
// of ~FP equivalence classes — for the stand-ins next to the paper's
// published numbers, plus the compressed size every registered codec
// achieves on each dataset. |[~FP]| is exact (lexicographic color
// refinement, node_order.h); the stand-ins are scaled, so compare the
// *ratio* |[~FP]| / |V| against the paper's, which is what Figure 11
// builds on. Codecs that do not apply to a dataset (the unlabeled
// baselines on labeled graphs) print "n/a".

#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/node_order.h"

using namespace grepair;
using namespace grepair::bench;

namespace {

void PrintTable(const char* title, const std::vector<std::string>& names) {
  auto codecs = PaperCodecNames();
  std::printf("\n== %s ==\n", title);
  std::printf("%-24s %10s %10s %5s %12s %8s | %12s %8s |", "graph", "|V|",
              "|E|", "|S|", "classes", "cls/|V|", "paper cls",
              "cls/|V|");
  for (const auto& codec : codecs) std::printf(" %10s", codec.c_str());
  std::printf("\n");
  for (const auto& name : names) {
    PaperDataset d = MakePaperDataset(name);
    uint32_t classes = CountFpClasses(d.data.graph);
    double ratio = static_cast<double>(classes) / d.data.graph.num_nodes();
    double paper_ratio =
        static_cast<double>(d.paper.fp_classes) / d.paper.nodes;
    std::printf("%-24s %10u %10u %5zu %12u %8.3f | %12llu %8.3f |",
                name.c_str(), d.data.graph.num_nodes(),
                d.data.graph.num_edges(), d.data.alphabet.size(), classes,
                ratio, static_cast<unsigned long long>(d.paper.fp_classes),
                paper_ratio);
    for (const auto& codec : codecs) {
      CodecRun run = RunCodec(codec, d.data);
      if (run.ok) {
        std::printf(" %10zu", run.bytes);
      } else {
        std::printf(" %10s", "n/a");
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf(
      "Tables I-III: dataset statistics (stand-ins vs paper) and\n"
      "compressed bytes per registered codec\n");
  PrintTable("Table I: network graphs", NetworkGraphNames());
  PrintTable("Table II: RDF graphs", RdfGraphNames());
  PrintTable("Table III: version graphs", VersionGraphNames());
  return 0;
}
