// Figure 10: gRePair compression (bpe) under different node orders.
//
// Paper shape: FP is best or near-best on most graphs; the orders
// differ little on RDF graphs (within ~0.5 bpe, Jamendo's natural-order
// exception aside) and version graphs benefit hugely from FP.

#include <cstdio>

#include "bench/bench_util.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  // The paper's representative selection (Section IV-B2).
  const std::vector<std::string> graphs = {
      "CA-AstroPh", "Email-EuAll", "NotreDame",
      "Specific properties en", "Jamendo", "DBLP60-70", "Tic-Tac-Toe"};
  const NodeOrderKind orders[] = {NodeOrderKind::kNatural,
                                  NodeOrderKind::kBfs,
                                  NodeOrderKind::kRandom,
                                  NodeOrderKind::kFp0, NodeOrderKind::kFp};

  std::printf("Figure 10: bpe under node orders\n");
  std::printf("%-24s", "graph");
  for (auto order : orders) {
    std::printf(" %9s", NodeOrderKindName(order).c_str());
  }
  std::printf("  winner\n");
  for (const auto& name : graphs) {
    PaperDataset d = MakePaperDataset(name);
    std::printf("%-24s", name.c_str());
    double best = 1e18;
    NodeOrderKind best_order = NodeOrderKind::kNatural;
    double fp_bpe = 0;
    for (auto order : orders) {
      CompressOptions options;
      options.node_order = order;
      GrepairRun run = RunGrepair(d.data, options);
      std::printf(" %9.3f", run.bpe);
      if (run.bpe < best) {
        best = run.bpe;
        best_order = order;
      }
      if (order == NodeOrderKind::kFp) fp_bpe = run.bpe;
    }
    std::printf("  %s", NodeOrderKindName(best_order).c_str());
    if (fp_bpe <= best * 1.05) std::printf(" (fp within 5%%)");
    std::printf("\n");
  }
  std::printf("\nPaper shape: FP best or near-best; version graphs gain "
              "most from FP; RDF orders nearly tie.\n");
  return 0;
}
