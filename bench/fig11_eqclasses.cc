// Figure 11: correlation between the number of ~FP equivalence classes
// and compression. The paper's claim: no graph sits in the lower-right
// corner — few classes (relative to |V|) always means good compression
// (low bpe). We print (classes/|V|, bpe) pairs for all 18 stand-ins and
// check the corner emptiness.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/node_order.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  std::vector<std::string> names;
  for (const auto& n : NetworkGraphNames()) names.push_back(n);
  for (const auto& n : RdfGraphNames()) names.push_back(n);
  for (const auto& n : VersionGraphNames()) names.push_back(n);

  std::printf("Figure 11: ~FP classes vs compression\n");
  std::printf("%-24s %10s %10s %10s %8s\n", "graph", "classes", "|V|",
              "cls/|V|", "bpe");
  bool corner_violated = false;
  for (const auto& name : names) {
    PaperDataset d = MakePaperDataset(name);
    uint32_t classes = CountFpClasses(d.data.graph);
    double ratio = static_cast<double>(classes) / d.data.graph.num_nodes();
    GrepairRun run = RunGrepair(d.data);
    std::printf("%-24s %10u %10u %10.4f %8.3f\n", name.c_str(), classes,
                d.data.graph.num_nodes(), ratio, run.bpe);
    // "Lower right corner": few classes but bad compression.
    if (ratio < 0.05 && run.bpe > 10.0) corner_violated = true;
  }
  std::printf("\nlower-right corner (cls/|V| < 0.05 but bpe > 10): %s\n",
              corner_violated ? "VIOLATED (shape MISMATCH)"
                              : "empty (shape OK, matches paper)");
  return 0;
}
