// Shard-scaling bench: sharded:grepair versus unsharded gRePair on
// the largest generator dataset (the DBLP-style version graph, 105600
// nodes / 172770 edges at the default size).
//
// Reports, per (shards, threads, strategy) configuration:
//   * compression wall-clock and speedup over unsharded gRePair,
//   * serialized container size and ratio delta versus unsharded
//     (positive = sharding cost, negative = sharding won — per-shard
//     renumbering shortens delta codes, so the version graph actually
//     compresses better sharded),
// and a final PASS/FAIL line for the acceptance target: >= 2x
// compression speedup at 4 threads with <= 10% compression-ratio
// loss. On a single-core host the speedup comes from RePair's
// superlinearity alone (K small problems are cheaper than one big
// one); with real cores the thread pool multiplies it further.
//
// Usage: shard_scaling [--size N] [--strategy edge-range|bfs]
//                      [--min-speedup X]
//   (--size is the dblp version count, default 32; --min-speedup
//   relaxes the exit-code gate for noisy shared CI runners, where a
//   small-size timing assertion would flake)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/api/grepair_api.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count() * 1e3;
}

struct Run {
  int shards = 0;
  int threads = 0;
  double ms = 0;
  size_t bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace grepair;
  uint32_t size = 32;
  std::string strategy = "edge-range";
  double min_speedup = 2.0;
  // Strict parses: atoi/atof would turn "--size abc" into a near-empty
  // dataset (meaningless verdict) and "--min-speedup abc" into an
  // always-pass 0.0 gate.
  auto usage = [] {
    std::fprintf(stderr,
                 "usage: shard_scaling [--size N] "
                 "[--strategy edge-range|bfs] [--min-speedup X]\n");
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    char* end = nullptr;
    if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1 || v > 100000) {
        return usage();
      }
      size = static_cast<uint32_t>(v);
    } else if (std::strcmp(argv[i], "--strategy") == 0 && i + 1 < argc) {
      strategy = argv[++i];
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      double v = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || v <= 0.0) return usage();
      min_speedup = v;
    } else {
      return usage();
    }
  }

  GeneratedGraph gg = DblpVersions(size, 200, 100, 1, "dblp");
  std::printf("dataset %s-%u: %u nodes, %u edges\n", gg.name.c_str(), size,
              gg.graph.num_nodes(), gg.graph.num_edges());

  auto grepair_codec = api::CodecRegistry::Create("grepair").ValueOrDie();
  auto t0 = Clock::now();
  auto baseline = grepair_codec->Compress(gg.graph, gg.alphabet);
  double baseline_ms = MsSince(t0);
  if (!baseline.ok()) {
    std::fprintf(stderr, "unsharded grepair failed: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }
  size_t baseline_bytes = baseline.value()->Serialize().size();
  std::printf("unsharded grepair: %.1f ms, %zu bytes (%.3f bpe)\n\n",
              baseline_ms, baseline_bytes,
              BitsPerEdge(baseline_bytes, gg.graph.num_edges()));

  auto sharded_codec =
      api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  std::printf("%7s %8s %11s %10s %9s %12s %12s\n", "shards", "threads",
              "strategy", "ms", "speedup", "bytes", "ratio-delta");
  std::vector<Run> runs;
  for (int shards : {4, 8, 16}) {
    for (int threads : {1, 4}) {
      api::CodecOptions options;
      options.Set("shards", std::to_string(shards));
      options.Set("threads", std::to_string(threads));
      options.Set("strategy", strategy);
      auto t1 = Clock::now();
      auto rep = sharded_codec->Compress(gg.graph, gg.alphabet, options);
      double ms = MsSince(t1);
      if (!rep.ok()) {
        std::fprintf(stderr, "sharded compress failed: %s\n",
                     rep.status().ToString().c_str());
        return 1;
      }
      size_t bytes = rep.value()->Serialize().size();
      double delta =
          100.0 * (static_cast<double>(bytes) - baseline_bytes) /
          baseline_bytes;
      std::printf("%7d %8d %11s %10.1f %8.2fx %12zu %+11.1f%%\n", shards,
                  threads, strategy.c_str(), ms, baseline_ms / ms, bytes,
                  delta);
      runs.push_back({shards, threads, ms, bytes});
    }
  }

  // Acceptance: best 4-thread configuration must be >= 2x faster than
  // unsharded with <= 10% size growth.
  const Run* best = nullptr;
  for (const Run& run : runs) {
    if (run.threads != 4) continue;
    double delta = 100.0 *
                   (static_cast<double>(run.bytes) - baseline_bytes) /
                   baseline_bytes;
    if (delta > 10.0) continue;
    if (best == nullptr || run.ms < best->ms) best = &run;
  }
  if (best != nullptr && baseline_ms / best->ms >= min_speedup) {
    std::printf(
        "\nacceptance (>=%.1fx @ 4 threads, <=10%% ratio loss): PASS "
        "(%d shards: %.2fx, %+.1f%% bytes)\n",
        min_speedup, best->shards, baseline_ms / best->ms,
        100.0 * (static_cast<double>(best->bytes) - baseline_bytes) /
            baseline_bytes);
    return 0;
  }
  std::printf(
      "\nacceptance (>=%.1fx @ 4 threads, <=10%% ratio loss): FAIL\n",
      min_speedup);
  return 1;
}
