// Section V: query evaluation over the grammar.
//
// Theorem 6 promises (s,t)-reachability in O(|G|) — a speed-up
// proportional to the compression ratio over the O(|val(G)|) BFS on the
// decompressed graph. Proposition 4's neighborhood queries pay a
// slow-down instead. This bench measures both on a well-compressing
// version graph and a star-heavy RDF graph, plus the one-pass speed-up
// functions (components, degree extrema, histogram).

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/graph_algos.h"
#include "src/query/neighborhood.h"
#include "src/query/reachability.h"
#include "src/query/speedup.h"
#include "src/util/rng.h"

using namespace grepair;
using namespace grepair::bench;
using Clock = std::chrono::steady_clock;

namespace {

void RunOn(const std::string& name) {
  PaperDataset d = MakePaperDataset(name);
  auto compressed = Compress(d.data.graph, d.data.alphabet, {});
  if (!compressed.ok()) return;
  const SlhrGrammar& grammar = compressed.value().grammar;
  auto derived = Derive(grammar);
  const Hypergraph& val = derived.value();
  double ratio = static_cast<double>(d.data.graph.TotalSize()) /
                 grammar.TotalSize();

  std::printf("\n-- %s: |g|=%llu |G|+|S|=%llu (ratio %.1fx)\n",
              name.c_str(),
              static_cast<unsigned long long>(d.data.graph.TotalSize()),
              static_cast<unsigned long long>(grammar.TotalSize()), ratio);

  // Reachability: grammar oracle vs BFS on val(G).
  ReachabilityIndex reach(grammar);
  Rng rng(1234);
  const int kQueries = 200;
  std::vector<std::pair<uint64_t, uint64_t>> queries;
  for (int i = 0; i < kQueries; ++i) {
    queries.push_back({rng.UniformBounded(val.num_nodes()),
                       rng.UniformBounded(val.num_nodes())});
  }
  int hits = 0;
  auto t0 = Clock::now();
  for (auto [u, v] : queries) {
    hits += reach.Reachable(u, v) ? 1 : 0;
  }
  auto t1 = Clock::now();
  int hits_bfs = 0;
  for (auto [u, v] : queries) {
    auto mask = DirectedReachable(val, static_cast<NodeId>(u));
    hits_bfs += mask[v] ? 1 : 0;
  }
  auto t2 = Clock::now();
  double grammar_us = Seconds(t0, t1) * 1e6 / kQueries;
  double bfs_us = Seconds(t1, t2) * 1e6 / kQueries;
  std::printf("reachability: grammar %8.1f us/query, BFS on val %8.1f "
              "us/query, speed-up %.1fx (agree: %s)\n",
              grammar_us, bfs_us, bfs_us / grammar_us,
              hits == hits_bfs ? "yes" : "NO");

  // Neighborhood queries: grammar vs direct adjacency.
  NeighborhoodIndex nbr(grammar);
  auto adj = DirectedAdjacency(val);
  uint64_t total_grammar = 0, total_direct = 0;
  t0 = Clock::now();
  for (int i = 0; i < kQueries; ++i) {
    total_grammar += nbr.OutNeighbors(queries[i].first).size();
  }
  t1 = Clock::now();
  for (int i = 0; i < kQueries; ++i) {
    total_direct += adj[queries[i].first].size();
  }
  t2 = Clock::now();
  std::printf("out-neighbors: grammar %8.2f us/query vs in-memory "
              "adjacency %8.3f us/query (expected slow-down)\n",
              Seconds(t0, t1) * 1e6 / kQueries,
              Seconds(t1, t2) * 1e6 / kQueries);
  (void)total_grammar;
  (void)total_direct;

  // One-pass speed-up functions vs brute force on val(G).
  t0 = Clock::now();
  uint64_t comps = CountConnectedComponents(grammar);
  auto extrema = ComputeDegreeExtrema(grammar);
  t1 = Clock::now();
  uint32_t comps_bf = 0;
  ConnectedComponents(val, &comps_bf);
  auto stats_bf = ComputeDegreeStats(val);
  t2 = Clock::now();
  std::printf("one-pass queries (components+degrees): grammar %.2f ms vs "
              "val(G) %.2f ms; components %llu/%u degrees [%llu,%llu]/"
              "[%u,%u] (agree: %s)\n",
              Seconds(t0, t1) * 1e3, Seconds(t1, t2) * 1e3,
              static_cast<unsigned long long>(comps), comps_bf,
              static_cast<unsigned long long>(extrema.min_degree),
              static_cast<unsigned long long>(extrema.max_degree),
              stats_bf.min_degree, stats_bf.max_degree,
              comps == comps_bf &&
                      extrema.min_degree == stats_bf.min_degree &&
                      extrema.max_degree == stats_bf.max_degree
                  ? "yes"
                  : "NO");
}

}  // namespace

int main() {
  std::printf("Section V: query evaluation over the grammar\n");
  RunOn("Tic-Tac-Toe");
  RunOn("Types ru");
  RunOn("DBLP60-70");
  return 0;
}
