// Section V: query evaluation over the grammar — plus the memoized
// batch query engine.
//
// Part 1 (paper): Theorem 6 promises (s,t)-reachability in O(|G|) — a
// speed-up proportional to the compression ratio over the O(|val(G)|)
// BFS on the decompressed graph. Proposition 4's neighborhood queries
// pay a slow-down instead. Measured on a well-compressing version
// graph and a star-heavy RDF graph, plus the one-pass speed-up
// functions (components, degree extrema, histogram).
//
// Part 2 (engine): the sharded codec's query cache and batch entry
// points, on sharded:grepair (16 shards, 4 query threads) over a
// generated dataset. Two workloads, each measuring its own claim:
//   warm-vs-cold  — a distinct-heavy query set run twice on one rep:
//                   the cold pass pays grammar walks + adaptive shard
//                   decodes, the warm pass is pure cache hits.
//   batch-vs-loop — a large, repeat-heavy batch: OutNeighborsBatch on
//                   a fresh rep vs the same queries looped one-by-one
//                   on a rep with the cache disabled (the pre-cache
//                   per-call routing this engine replaces).
// Cached/batched answers are checked identical to uncached ones.
// --min-warm-speedup / --min-batch-speedup turn the report into a
// pass/fail gate (defaults are the acceptance numbers; CI's tiny
// smoke run lowers them because wall-clock gates flake on loaded
// shared runners).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "src/graph/graph_algos.h"
#include "src/query/neighborhood.h"
#include "src/query/reachability.h"
#include "src/query/speedup.h"
#include "src/util/rng.h"

using namespace grepair;
using namespace grepair::bench;
using Clock = std::chrono::steady_clock;

namespace {

void RunOn(const std::string& name) {
  PaperDataset d = MakePaperDataset(name);
  auto compressed = Compress(d.data.graph, d.data.alphabet, {});
  if (!compressed.ok()) return;
  const SlhrGrammar& grammar = compressed.value().grammar;
  auto derived = Derive(grammar);
  const Hypergraph& val = derived.value();
  double ratio = static_cast<double>(d.data.graph.TotalSize()) /
                 grammar.TotalSize();

  std::printf("\n-- %s: |g|=%llu |G|+|S|=%llu (ratio %.1fx)\n",
              name.c_str(),
              static_cast<unsigned long long>(d.data.graph.TotalSize()),
              static_cast<unsigned long long>(grammar.TotalSize()), ratio);

  // Reachability: grammar oracle vs BFS on val(G).
  ReachabilityIndex reach(grammar);
  Rng rng(1234);
  const int kQueries = 200;
  std::vector<std::pair<uint64_t, uint64_t>> queries;
  for (int i = 0; i < kQueries; ++i) {
    queries.push_back({rng.UniformBounded(val.num_nodes()),
                       rng.UniformBounded(val.num_nodes())});
  }
  int hits = 0;
  auto t0 = Clock::now();
  for (auto [u, v] : queries) {
    hits += reach.Reachable(u, v) ? 1 : 0;
  }
  auto t1 = Clock::now();
  int hits_bfs = 0;
  for (auto [u, v] : queries) {
    auto mask = DirectedReachable(val, static_cast<NodeId>(u));
    hits_bfs += mask[v] ? 1 : 0;
  }
  auto t2 = Clock::now();
  double grammar_us = Seconds(t0, t1) * 1e6 / kQueries;
  double bfs_us = Seconds(t1, t2) * 1e6 / kQueries;
  std::printf("reachability: grammar %8.1f us/query, BFS on val %8.1f "
              "us/query, speed-up %.1fx (agree: %s)\n",
              grammar_us, bfs_us, bfs_us / grammar_us,
              hits == hits_bfs ? "yes" : "NO");

  // Neighborhood queries: grammar vs direct adjacency.
  NeighborhoodIndex nbr(grammar);
  auto adj = DirectedAdjacency(val);
  uint64_t total_grammar = 0, total_direct = 0;
  t0 = Clock::now();
  for (int i = 0; i < kQueries; ++i) {
    total_grammar += nbr.OutNeighbors(queries[i].first).size();
  }
  t1 = Clock::now();
  for (int i = 0; i < kQueries; ++i) {
    total_direct += adj[queries[i].first].size();
  }
  t2 = Clock::now();
  std::printf("out-neighbors: grammar %8.2f us/query vs in-memory "
              "adjacency %8.3f us/query (expected slow-down; memo "
              "entries %llu, hits %llu)\n",
              Seconds(t0, t1) * 1e6 / kQueries,
              Seconds(t1, t2) * 1e6 / kQueries,
              (unsigned long long)nbr.memo_entries(),
              (unsigned long long)nbr.memo_hits());
  (void)total_grammar;
  (void)total_direct;

  // One-pass speed-up functions vs brute force on val(G).
  t0 = Clock::now();
  uint64_t comps = CountConnectedComponents(grammar);
  auto extrema = ComputeDegreeExtrema(grammar);
  t1 = Clock::now();
  if (!extrema.ok()) {
    std::printf("degree extrema unavailable: %s\n",
                extrema.status().ToString().c_str());
    return;
  }
  uint32_t comps_bf = 0;
  ConnectedComponents(val, &comps_bf);
  auto stats_bf = ComputeDegreeStats(val);
  t2 = Clock::now();
  std::printf("one-pass queries (components+degrees): grammar %.2f ms vs "
              "val(G) %.2f ms; components %llu/%u degrees [%llu,%llu]/"
              "[%u,%u] (agree: %s)\n",
              Seconds(t0, t1) * 1e3, Seconds(t1, t2) * 1e3,
              static_cast<unsigned long long>(comps), comps_bf,
              static_cast<unsigned long long>(extrema.value().min_degree),
              static_cast<unsigned long long>(extrema.value().max_degree),
              stats_bf.min_degree, stats_bf.max_degree,
              comps == comps_bf &&
                      extrema.value().min_degree == stats_bf.min_degree &&
                      extrema.value().max_degree == stats_bf.max_degree
                  ? "yes"
                  : "NO");
}

// Part 2: the batch engine on sharded:grepair.
int RunCacheAndBatch(uint32_t size, uint32_t num_queries, double min_warm,
                     double min_batch) {
  GeneratedGraph gg = BarabasiAlbert(size, 4, 7);
  // Distinct-heavy set for warm-vs-cold (at most one query per two
  // nodes, so the cold pass really pays walks + decodes); repeat-heavy
  // batch (several queries per node on average) for batch-vs-loop.
  uint32_t warm_queries = std::min(
      num_queries, std::max(1000u, gg.graph.num_nodes() / 2));
  uint32_t batch_queries = num_queries;
  std::printf("\n== batch engine: sharded:grepair, 16 shards, 4 query "
              "threads, %u nodes, %u/%u queries (warm/batch) ==\n",
              gg.graph.num_nodes(), warm_queries, batch_queries);

  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "16");
  options.Set("threads", "4");
  auto compressed = codec->Compress(gg.graph, gg.alphabet, options);
  if (!compressed.ok()) {
    std::fprintf(stderr, "%s\n", compressed.status().ToString().c_str());
    return 1;
  }
  auto bytes = compressed.value()->Serialize();

  // Three independent reps so no measurement inherits another's cache:
  // cached (cold+warm singles), batch, and uncached loop baseline.
  auto MakeRep = [&]() {
    auto rep = codec->Deserialize(bytes);
    if (!rep.ok()) {
      std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(rep).ValueOrDie();
  };
  auto rep_cached = MakeRep();
  auto rep_batch = MakeRep();
  auto rep_uncached = MakeRep();
  auto* sh_batch = dynamic_cast<shard::ShardedRep*>(rep_batch.get());
  auto* sh_uncached = dynamic_cast<shard::ShardedRep*>(rep_uncached.get());
  sh_batch->set_query_threads(4);
  sh_uncached->set_query_cache_bytes(0);  // per-call routing baseline

  Rng rng(99);
  std::vector<uint64_t> warm_set, batch_set;
  for (uint32_t i = 0; i < warm_queries; ++i) {
    warm_set.push_back(rng.UniformBounded(gg.graph.num_nodes()));
  }
  for (uint32_t i = 0; i < batch_queries; ++i) {
    batch_set.push_back(rng.UniformBounded(gg.graph.num_nodes()));
  }

  auto RunLoop = [&](const api::CompressedRep& rep,
                     const std::vector<uint64_t>& queries,
                     std::vector<std::vector<uint64_t>>* out) {
    out->clear();
    out->reserve(queries.size());
    auto t0 = Clock::now();
    for (uint64_t q : queries) {
      auto r = rep.OutNeighbors(q);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        std::exit(1);
      }
      out->push_back(std::move(r).ValueOrDie());
    }
    return Seconds(t0, Clock::now());
  };

  std::vector<std::vector<uint64_t>> cold_results, warm_results,
      uncached_results;
  double t_cold = RunLoop(*rep_cached, warm_set, &cold_results);
  double t_warm = RunLoop(*rep_cached, warm_set, &warm_results);
  double t_uncached = RunLoop(*rep_uncached, batch_set, &uncached_results);

  auto t0 = Clock::now();
  auto batch = rep_batch->OutNeighborsBatch(batch_set);
  double t_batch = Seconds(t0, Clock::now());
  if (!batch.ok()) {
    std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
    return 1;
  }

  bool agree =
      cold_results == warm_results && uncached_results == batch.value();
  double warm_speedup = t_warm > 0 ? t_cold / t_warm : 0;
  double batch_speedup = t_batch > 0 ? t_uncached / t_batch : 0;

  std::printf("single queries: cold %8.2f us/q, warm %8.2f us/q -> "
              "warm-vs-cold %.1fx\n",
              t_cold * 1e6 / warm_set.size(),
              t_warm * 1e6 / warm_set.size(), warm_speedup);
  std::printf("batch queries:  loop (uncached) %8.2f us/q, batch %8.2f "
              "us/q -> batch-vs-loop %.1fx\n",
              t_uncached * 1e6 / batch_set.size(),
              t_batch * 1e6 / batch_set.size(), batch_speedup);
  std::printf("answers identical (cold==warm, uncached==batch): %s\n",
              agree ? "yes" : "NO");
  auto stats = rep_cached->query_stats();
  std::printf("cached-rep stats: hits=%llu misses=%llu decodes=%llu "
              "evictions=%llu cache_bytes=%llu\n",
              (unsigned long long)stats.cache_hits,
              (unsigned long long)stats.cache_misses,
              (unsigned long long)stats.shard_decodes,
              (unsigned long long)stats.cache_evictions,
              (unsigned long long)stats.cache_bytes_used);

  // Reachability batch (informational): shares the shard cache.
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  for (int i = 0; i < 64; ++i) {
    pairs.push_back({rng.UniformBounded(gg.graph.num_nodes()),
                     rng.UniformBounded(gg.graph.num_nodes())});
  }
  t0 = Clock::now();
  auto reach = rep_batch->ReachableBatch(pairs);
  if (reach.ok()) {
    std::printf("reachability batch: %zu pairs in %.2f ms on the warm "
                "batch rep\n",
                pairs.size(), Seconds(t0, Clock::now()) * 1e3);
  }

  int rc = 0;
  if (!agree) {
    std::fprintf(stderr, "FAIL: cached/batched answers diverge\n");
    rc = 1;
  }
  if (warm_speedup < min_warm) {
    std::fprintf(stderr, "FAIL: warm-vs-cold %.2fx < required %.2fx\n",
                 warm_speedup, min_warm);
    rc = 1;
  }
  if (batch_speedup < min_batch) {
    std::fprintf(stderr, "FAIL: batch-vs-loop %.2fx < required %.2fx\n",
                 batch_speedup, min_batch);
    rc = 1;
  }
  return rc;
}

}  // namespace

// Strictly positive integer; atoi would turn "--size oops" into a
// zero-node graph and a division by zero in the query sampler.
bool ParsePositive(const char* flag, const char* text, uint32_t* out) {
  char* end = nullptr;
  long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v < 1 || v > 0x7FFFFFFFll) {
    std::fprintf(stderr, "%s expects a positive integer, got '%s'\n",
                 flag, text);
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

int main(int argc, char** argv) {
  uint32_t size = 12000;
  uint32_t num_queries = 36000;
  double min_warm = 5.0;
  double min_batch = 2.0;
  bool skip_paper = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--size" && i + 1 < argc) {
      if (!ParsePositive("--size", argv[++i], &size)) return 2;
    } else if (arg == "--queries" && i + 1 < argc) {
      if (!ParsePositive("--queries", argv[++i], &num_queries)) return 2;
    } else if (arg == "--min-warm-speedup" && i + 1 < argc) {
      min_warm = std::atof(argv[++i]);
    } else if (arg == "--min-batch-speedup" && i + 1 < argc) {
      min_batch = std::atof(argv[++i]);
    } else if (arg == "--skip-paper") {
      skip_paper = true;
    } else {
      std::fprintf(stderr,
                   "usage: query_speedup [--size N] [--queries Q] "
                   "[--min-warm-speedup X] [--min-batch-speedup X] "
                   "[--skip-paper]\n");
      return 2;
    }
  }
  if (!skip_paper) {
    std::printf("Section V: query evaluation over the grammar\n");
    RunOn("Tic-Tac-Toe");
    RunOn("Types ru");
    RunOn("DBLP60-70");
  }
  return RunCacheAndBatch(size, num_queries, min_warm, min_batch);
}
