// Tests for the synthetic dataset generators: determinism, structural
// properties the bench tables rely on, and the paper-dataset registry.

#include <gtest/gtest.h>

#include "src/datasets/generators.h"
#include "src/datasets/paper_datasets.h"
#include "src/graph/graph_algos.h"
#include "src/graph/node_order.h"

namespace grepair {
namespace {

TEST(GeneratorsTest, Deterministic) {
  auto a = ErdosRenyi(200, 600, 7, 2);
  auto b = ErdosRenyi(200, 600, 7, 2);
  EXPECT_TRUE(a.graph == b.graph);
  auto c = ErdosRenyi(200, 600, 8, 2);
  EXPECT_FALSE(a.graph == c.graph);
}

TEST(GeneratorsTest, AllValidAndSimple) {
  std::vector<GeneratedGraph> graphs;
  graphs.push_back(ErdosRenyi(100, 300, 1, 3));
  graphs.push_back(BarabasiAlbert(200, 3, 2));
  graphs.push_back(CoAuthorship(100, 150, 3));
  graphs.push_back(HubNetwork(150, 600, 8, 4));
  graphs.push_back(RdfTypes(200, 10, 5));
  graphs.push_back(RdfEntities(60, 8, 10, 6));
  graphs.push_back(GamePositions(20, 8, 3, 4, 7));
  graphs.push_back(DblpVersions(3, 40, 30, 8, "v"));
  for (const auto& gg : graphs) {
    EXPECT_TRUE(gg.graph.Validate(gg.alphabet).ok()) << gg.name;
    EXPECT_TRUE(gg.graph.IsSimple()) << gg.name;
    EXPECT_GT(gg.graph.num_edges(), 0u) << gg.name;
  }
}

TEST(GeneratorsTest, BarabasiAlbertIsSkewed) {
  auto gg = BarabasiAlbert(2000, 3, 11);
  auto stats = ComputeDegreeStats(gg.graph);
  // Preferential attachment: hubs far above the mean.
  EXPECT_GT(stats.max_degree, 10 * stats.mean_degree);
}

TEST(GeneratorsTest, RdfTypesIsStarForest) {
  auto gg = RdfTypes(1000, 12, 12, 1.0);
  // Every edge points into one of the 12 type hubs.
  for (const auto& e : gg.graph.edges()) {
    EXPECT_LT(e.att[1], 12u);
    EXPECT_GE(e.att[0], 12u);
  }
  // Few FP classes: the structure is extremely regular.
  EXPECT_LT(CountFpClasses(gg.graph), 80u);
}

TEST(GeneratorsTest, RdfTypesMeanTypesKnob) {
  auto single = RdfTypes(5000, 30, 13, 1.0);
  auto multi = RdfTypes(5000, 30, 13, 2.9);
  double r1 = static_cast<double>(single.graph.num_edges()) / 5000;
  double r2 = static_cast<double>(multi.graph.num_edges()) / 5000;
  EXPECT_NEAR(r1, 1.0, 0.05);
  EXPECT_NEAR(r2, 2.9, 0.4);
}

TEST(GeneratorsTest, CycleWithDiagonalShape) {
  auto gg = CycleWithDiagonal();
  EXPECT_EQ(gg.graph.num_nodes(), 4u);
  EXPECT_EQ(gg.graph.num_edges(), 5u);
}

TEST(GeneratorsTest, DisjointCopiesBlockStructure) {
  auto unit = CycleWithDiagonal();
  auto copies = DisjointCopies(unit, 10, "c10");
  EXPECT_EQ(copies.graph.num_nodes(), 40u);
  EXPECT_EQ(copies.graph.num_edges(), 50u);
  uint32_t comps = 0;
  ConnectedComponents(copies.graph, &comps);
  EXPECT_EQ(comps, 10u);
  // Identical copies collapse to the unit's FP classes.
  EXPECT_EQ(CountFpClasses(copies.graph), CountFpClasses(unit.graph));
}

TEST(GeneratorsTest, GamePositionsPerturbKnob) {
  auto clean = GamePositions(200, 9, 3, 3, 14, 0.0);
  auto noisy = GamePositions(200, 9, 3, 150, 14, 0.5);
  EXPECT_LT(CountFpClasses(clean.graph), 40u);
  EXPECT_GT(CountFpClasses(noisy.graph),
            4 * CountFpClasses(clean.graph));
}

TEST(GeneratorsTest, CoAuthorshipHistoryGrows) {
  auto snapshots = CoAuthorshipHistory(5, 50, 40, 15);
  ASSERT_EQ(snapshots.size(), 5u);
  for (size_t y = 1; y < snapshots.size(); ++y) {
    EXPECT_GE(snapshots[y].num_nodes(), snapshots[y - 1].num_nodes());
    EXPECT_GE(snapshots[y].num_edges(), snapshots[y - 1].num_edges());
  }
}

TEST(PaperDatasetsTest, RegistryCoversAllTables) {
  EXPECT_EQ(NetworkGraphNames().size(), 8u);
  EXPECT_EQ(RdfGraphNames().size(), 6u);
  EXPECT_EQ(VersionGraphNames().size(), 4u);
}

TEST(PaperDatasetsTest, StandInsAreConsistent) {
  for (const auto& name :
       {std::string("CA-GrQc"), std::string("Types ru"),
        std::string("Identica"), std::string("Tic-Tac-Toe"),
        std::string("DBLP60-70")}) {
    PaperDataset d = MakePaperDataset(name);
    EXPECT_EQ(d.data.name, name);
    EXPECT_TRUE(d.data.graph.Validate(d.data.alphabet).ok()) << name;
    EXPECT_GT(d.data.graph.num_edges(), 100u) << name;
    EXPECT_GT(d.scale, 0.0);
    EXPECT_LE(d.scale, 1.6) << name;
    EXPECT_EQ(d.paper.name, name);
    EXPECT_GT(d.paper.edges, 0u);
  }
}

TEST(PaperDatasetsTest, TicTacToeHasTinyFpClassCount) {
  // Table III reports |[~FP]| = 9 for Tic-Tac-Toe; the stand-in must
  // stay in that regime (near-identical repeated positions).
  PaperDataset d = MakePaperDataset("Tic-Tac-Toe");
  EXPECT_LT(CountFpClasses(d.data.graph), 60u);
}

TEST(PaperDatasetsTest, LabeledGraphsUseDeclaredLabels) {
  PaperDataset d = MakePaperDataset("Identica");
  EXPECT_EQ(d.data.alphabet.size(), d.paper.labels);
  PaperDataset chess = MakePaperDataset("Chess");
  EXPECT_EQ(chess.data.alphabet.size(), chess.paper.labels);
}

}  // namespace
}  // namespace grepair
