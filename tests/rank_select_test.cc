// Tests for the succinct rank/select bitvector and the Elias-Fano
// index that replaced NodeMap's binary searches: exhaustive checks
// against naive reference implementations on structured and random
// bit patterns, and predecessor semantics (upper_bound - 1 contract)
// on duplicate-heavy prefix arrays.

#include "src/util/rank_select.h"

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"

namespace grepair {
namespace {

std::vector<uint64_t> PackBits(const std::vector<bool>& bits) {
  std::vector<uint64_t> words((bits.size() + 63) / 64, 0);
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) words[i / 64] |= 1ull << (i % 64);
  }
  return words;
}

// Checks every Rank1 / Select1 / Select0 answer against a linear scan.
void CheckAgainstReference(const std::vector<bool>& bits) {
  RankSelectBitVector bv(PackBits(bits), bits.size());
  ASSERT_EQ(bv.size(), bits.size());
  size_t ones = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    ASSERT_EQ(bv.Rank1(i), ones) << "rank at " << i;
    ASSERT_EQ(bv.Get(i), bits[i]) << "get at " << i;
    if (bits[i]) ++ones;
  }
  ASSERT_EQ(bv.Rank1(bits.size()), ones);
  ASSERT_EQ(bv.num_ones(), ones);
  ASSERT_EQ(bv.num_zeros(), bits.size() - ones);
  size_t k1 = 0, k0 = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) {
      ASSERT_EQ(bv.Select1(k1), i) << "select1 " << k1;
      ++k1;
    } else {
      ASSERT_EQ(bv.Select0(k0), i) << "select0 " << k0;
      ++k0;
    }
  }
}

TEST(RankSelectBitVectorTest, StructuredPatterns) {
  CheckAgainstReference({});
  CheckAgainstReference({true});
  CheckAgainstReference({false});
  // All-ones and all-zeros across word and superblock boundaries.
  for (size_t n : {63u, 64u, 65u, 511u, 512u, 513u, 1200u}) {
    CheckAgainstReference(std::vector<bool>(n, true));
    CheckAgainstReference(std::vector<bool>(n, false));
    std::vector<bool> alternating(n);
    for (size_t i = 0; i < n; ++i) alternating[i] = (i % 2 == 0);
    CheckAgainstReference(alternating);
  }
}

TEST(RankSelectBitVectorTest, RandomDensities) {
  std::mt19937_64 rng(0x5eed);
  for (double density : {0.01, 0.3, 0.5, 0.9, 0.99}) {
    std::bernoulli_distribution coin(density);
    std::vector<bool> bits(2777);  // ragged tail, >4 superblocks
    for (size_t i = 0; i < bits.size(); ++i) bits[i] = coin(rng);
    CheckAgainstReference(bits);
  }
}

TEST(RankSelectBitVectorTest, DirtyTailBitsAreMasked) {
  // Caller leaves garbage past num_bits; Select0 must not see it.
  std::vector<uint64_t> words = {~0ull};
  RankSelectBitVector bv(std::move(words), 10);
  EXPECT_EQ(bv.num_ones(), 10u);
  EXPECT_EQ(bv.num_zeros(), 0u);
  EXPECT_EQ(bv.Select1(9), 9u);
}

// Reference predecessor: largest i with sorted[i] <= x, i.e.
// upper_bound(x) - 1 — exactly what NodeMap's PathOf descends on.
bool RefPredecessor(const std::vector<uint64_t>& sorted, uint64_t x,
                    size_t* index, uint64_t* value) {
  auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  if (it == sorted.begin()) return false;
  *index = static_cast<size_t>(it - sorted.begin()) - 1;
  *value = sorted[*index];
  return true;
}

void CheckEliasFano(const std::vector<uint64_t>& sorted,
                    const std::vector<uint64_t>& probes) {
  EliasFanoIndex ef(sorted);
  ASSERT_EQ(ef.size(), sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(ef.Get(i), sorted[i]) << "get at " << i;
  }
  for (uint64_t x : probes) {
    size_t ref_idx = 0, ef_idx = 0;
    uint64_t ref_val = 0, ef_val = 0;
    bool ref_found = RefPredecessor(sorted, x, &ref_idx, &ref_val);
    bool ef_found = ef.PredecessorOrEqual(x, &ef_idx, &ef_val);
    ASSERT_EQ(ef_found, ref_found) << "probe " << x;
    if (ref_found) {
      ASSERT_EQ(ef_idx, ref_idx) << "probe " << x;
      ASSERT_EQ(ef_val, ref_val) << "probe " << x;
    }
  }
}

std::vector<uint64_t> DenseProbesAround(const std::vector<uint64_t>& sorted) {
  std::vector<uint64_t> probes;
  for (uint64_t v : sorted) {
    if (v > 0) probes.push_back(v - 1);
    probes.push_back(v);
    probes.push_back(v + 1);
  }
  probes.push_back(0);
  return probes;
}

TEST(EliasFanoIndexTest, EmptyAndSingleton) {
  EliasFanoIndex empty{std::vector<uint64_t>{}};
  size_t idx = 0;
  uint64_t val = 0;
  EXPECT_FALSE(empty.PredecessorOrEqual(7, &idx, &val));

  CheckEliasFano({0}, {0, 1, 100});
  CheckEliasFano({42}, {0, 41, 42, 43, ~0ull});
}

TEST(EliasFanoIndexTest, PrefixArrayWithEmptyBlocks) {
  // The NodeMap shape: prefix sums where terminal edges contribute
  // empty blocks (duplicates), including leading and trailing runs.
  CheckEliasFano({5, 5, 5, 8, 8, 20, 20, 20},
                 DenseProbesAround({5, 5, 5, 8, 8, 20, 20, 20}));
  CheckEliasFano({0, 0, 0, 0}, {0, 1, 2});
  CheckEliasFano({0, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 7},
                 DenseProbesAround({0, 3, 7}));
}

TEST(EliasFanoIndexTest, RandomMonotoneSequences) {
  std::mt19937_64 rng(0xef);
  for (uint64_t max_gap : {1ull, 3ull, 1000ull, 1ull << 40}) {
    std::vector<uint64_t> sorted;
    uint64_t v = rng() % 5;
    for (int i = 0; i < 700; ++i) {
      sorted.push_back(v);
      v += rng() % (max_gap + 1);
    }
    std::vector<uint64_t> probes = DenseProbesAround(sorted);
    for (int i = 0; i < 200; ++i) {
      probes.push_back(rng() % (sorted.back() + 2));
    }
    CheckEliasFano(sorted, probes);
  }
}

TEST(EliasFanoIndexTest, LargeUniverse) {
  // Values near 2^64: exercises the max low_bits_ parameterization.
  std::vector<uint64_t> sorted = {1ull << 40, 1ull << 50, 1ull << 63,
                                  (1ull << 63) + 12345, ~0ull - 1, ~0ull};
  CheckEliasFano(sorted, DenseProbesAround(sorted));
}

}  // namespace
}  // namespace grepair
