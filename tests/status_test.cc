// Tests for the Status/Result error-handling primitives and the
// Alphabet ranked-label table.

#include <gtest/gtest.h>

#include "src/graph/hypergraph.h"
#include "src/util/status.h"

namespace grepair {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad magic");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.message(), "bad magic");
  EXPECT_EQ(s.ToString(), "Corruption: bad magic");
}

TEST(StatusTest, AllConstructors) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

Status Propagates(bool fail) {
  GREPAIR_RETURN_IF_ERROR(fail ? Status::NotFound("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Propagates(false).ok());
  Status s = Propagates(true);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "inner");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  r.value() = 43;
  EXPECT_EQ(std::move(r).ValueOrDie(), 43);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::OutOfRange("too big"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 7);
}

TEST(AlphabetTest, AddAndQuery) {
  Alphabet a;
  Label x = a.Add("edge", 2);
  Label y = a.Add("hyper", 3);
  EXPECT_EQ(x, 0u);
  EXPECT_EQ(y, 1u);
  EXPECT_EQ(a.rank(x), 2);
  EXPECT_EQ(a.rank(y), 3);
  EXPECT_EQ(a.name(y), "hyper");
  EXPECT_EQ(a.size(), 2u);
}

TEST(AlphabetTest, SimpleLabelsBatch) {
  Alphabet a;
  a.Add("first", 4);
  Label base = a.AddSimpleLabels(3);
  EXPECT_EQ(base, 1u);
  EXPECT_EQ(a.size(), 4u);
  for (Label l = base; l < a.size(); ++l) EXPECT_EQ(a.rank(l), 2);
}

TEST(AlphabetTest, EqualityIgnoresNames) {
  Alphabet a, b;
  a.Add("x", 2);
  b.Add("y", 2);
  EXPECT_TRUE(a == b);  // ranks define compatibility
  b.Add("z", 3);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace grepair
