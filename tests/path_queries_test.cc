// Regular path queries over the grammar, verified against brute-force
// product-automaton BFS on the materialized val(G).

#include <gtest/gtest.h>

#include "src/datasets/generators.h"
#include "src/grepair/compressor.h"
#include "src/query/path_queries.h"
#include "src/util/rng.h"

namespace grepair {
namespace {

// Brute force: BFS over (node, state) pairs of the explicit graph.
bool BruteForceMatch(const Hypergraph& g, const LabelNfa& nfa, uint64_t from,
                     uint64_t to) {
  if (from == to && nfa.AcceptsEmpty()) return true;
  const uint32_t q = nfa.num_states;
  std::vector<std::vector<uint32_t>> adj(
      static_cast<size_t>(g.num_nodes()) * q);
  for (const auto& e : g.edges()) {
    if (e.att.size() != 2) continue;
    for (uint32_t s = 0; s < q; ++s) {
      for (const auto& [label, t] : nfa.transitions[s]) {
        if (label == kInvalidLabel || label == e.label) {
          adj[e.att[0] * q + s].push_back(
              static_cast<uint32_t>(e.att[1] * q + t));
        }
      }
    }
  }
  std::vector<char> reached(adj.size(), 0);
  std::vector<uint32_t> stack{static_cast<uint32_t>(from * q + nfa.start)};
  reached[stack[0]] = 1;
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    for (uint32_t u : adj[v]) {
      if (!reached[u]) {
        reached[u] = 1;
        stack.push_back(u);
      }
    }
  }
  for (uint32_t s = 0; s < q; ++s) {
    if (nfa.accepting[s] && reached[to * q + s]) return true;
  }
  return false;
}

TEST(NfaTest, CompileSingleLabel) {
  auto nfa = CompileNfa(PathExpr::Single(3));
  EXPECT_FALSE(nfa.AcceptsEmpty());
  EXPECT_GT(nfa.num_states, 0u);
}

TEST(NfaTest, StarAcceptsEmpty) {
  auto nfa = CompileNfa(PathExpr::Star(PathExpr::Single(0)));
  EXPECT_TRUE(nfa.AcceptsEmpty());
  auto plus = CompileNfa(PathExpr::Plus(PathExpr::Single(0)));
  EXPECT_FALSE(plus.AcceptsEmpty());
}

TEST(PathQueryTest, ChainOfAlternatingLabels) {
  // a b a b ... chain; query "a b" must connect exactly stride-2 hops
  // starting at even positions.
  GeneratedGraph gg;
  gg.alphabet.Add("a", 2);
  gg.alphabet.Add("b", 2);
  const uint32_t n = 64;
  gg.graph = Hypergraph(n);
  for (uint32_t v = 0; v + 1 < n; ++v) {
    gg.graph.AddSimpleEdge(v, v + 1, v % 2);
  }
  auto result = Compress(gg.graph, gg.alphabet, {});
  ASSERT_TRUE(result.ok());
  const SlhrGrammar& grammar = result.value().grammar;
  auto derived = Derive(grammar);
  const Hypergraph& val = derived.value();

  auto ab = CompileNfa(
      PathExpr::Concat(PathExpr::Single(0), PathExpr::Single(1)));
  PathQueryIndex index(grammar, ab);
  int matches = 0;
  for (uint64_t u = 0; u < val.num_nodes(); ++u) {
    for (uint64_t v = 0; v < val.num_nodes(); ++v) {
      bool got = index.Matches(u, v);
      bool want = BruteForceMatch(val, ab, u, v);
      ASSERT_EQ(got, want) << u << " -> " << v;
      matches += got;
    }
  }
  // Every even-position node except the last reaches exactly one node.
  EXPECT_EQ(matches, static_cast<int>(n / 2 - 1));
}

TEST(PathQueryTest, AnyStarEqualsReachability) {
  GeneratedGraph gg = ErdosRenyi(120, 360, 81, 2);
  auto result = Compress(gg.graph, gg.alphabet, {});
  const SlhrGrammar& grammar = result.value().grammar;
  auto derived = Derive(grammar);
  auto any_star = CompileNfa(PathExpr::Star(PathExpr::Any()));
  PathQueryIndex index(grammar, any_star);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    uint64_t u = rng.UniformBounded(derived.value().num_nodes());
    uint64_t v = rng.UniformBounded(derived.value().num_nodes());
    ASSERT_EQ(index.Matches(u, v),
              BruteForceMatch(derived.value(), any_star, u, v))
        << u << " -> " << v;
  }
}

struct QueryCase {
  const char* name;
  std::shared_ptr<PathExpr> (*make)();
};

std::shared_ptr<PathExpr> MakeAStar() {
  return PathExpr::Star(PathExpr::Single(0));
}
std::shared_ptr<PathExpr> MakeAPlusB() {
  return PathExpr::Concat(PathExpr::Plus(PathExpr::Single(0)),
                          PathExpr::Single(1));
}
std::shared_ptr<PathExpr> MakeAltStar() {
  return PathExpr::Star(
      PathExpr::Alt(PathExpr::Single(0), PathExpr::Single(1)));
}
std::shared_ptr<PathExpr> MakeAnyAnyA() {
  return PathExpr::Concat(PathExpr::Concat(PathExpr::Any(), PathExpr::Any()),
                          PathExpr::Single(0));
}

class PathQuerySweep : public ::testing::TestWithParam<QueryCase> {};

TEST_P(PathQuerySweep, MatchesBruteForceOnRandomGraphs) {
  auto expr = GetParam().make();
  auto nfa = CompileNfa(expr);
  for (uint64_t seed : {11ull, 12ull}) {
    GeneratedGraph gg = ErdosRenyi(90, 280, seed, 3);
    auto result = Compress(gg.graph, gg.alphabet, {});
    ASSERT_TRUE(result.ok());
    const SlhrGrammar& grammar = result.value().grammar;
    auto derived = Derive(grammar);
    PathQueryIndex index(grammar, nfa);
    Rng rng(seed * 31);
    for (int i = 0; i < 200; ++i) {
      uint64_t u = rng.UniformBounded(derived.value().num_nodes());
      uint64_t v = rng.UniformBounded(derived.value().num_nodes());
      ASSERT_EQ(index.Matches(u, v),
                BruteForceMatch(derived.value(), nfa, u, v))
          << GetParam().name << ": " << u << " -> " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Exprs, PathQuerySweep,
    ::testing::Values(QueryCase{"a_star", &MakeAStar},
                      QueryCase{"a_plus_b", &MakeAPlusB},
                      QueryCase{"alt_star", &MakeAltStar},
                      QueryCase{"any_any_a", &MakeAnyAnyA}),
    [](const auto& suite_info) { return std::string(suite_info.param.name); });

TEST(PathQueryTest, VersionGraphLabeledPaths) {
  // Game positions: labeled edges within repeated components.
  GeneratedGraph gg = GamePositions(30, 8, 3, 4, 82);
  auto result = Compress(gg.graph, gg.alphabet, {});
  const SlhrGrammar& grammar = result.value().grammar;
  auto derived = Derive(grammar);
  auto nfa = CompileNfa(PathExpr::Concat(
      PathExpr::Single(0), PathExpr::Star(PathExpr::Single(1))));
  PathQueryIndex index(grammar, nfa);
  Rng rng(9);
  for (int i = 0; i < 250; ++i) {
    uint64_t u = rng.UniformBounded(derived.value().num_nodes());
    uint64_t v = rng.UniformBounded(derived.value().num_nodes());
    ASSERT_EQ(index.Matches(u, v),
              BruteForceMatch(derived.value(), nfa, u, v));
  }
}

}  // namespace
}  // namespace grepair
