// Direct tests for the occurrence index / priority queue substrate
// (Section III-C1 data structures).

#include <gtest/gtest.h>

#include "src/grepair/occurrence_index.h"

namespace grepair {
namespace {

DigramShape ShapeWithLabel(Label l0, Label l1) {
  DigramShape s;
  s.label0 = l0;
  s.label1 = l1;
  s.rank0 = 2;
  s.rank1 = 2;
  s.shared = {0x0100};  // pos1 of edge0 == pos0 of edge1
  s.ext0 = 0b01;
  s.ext1 = 0b10;
  return s;
}

TEST(OccurrenceIndexTest, PopMaxReturnsMostFrequent) {
  OccurrenceIndex index(100);
  DigramShape a = ShapeWithLabel(0, 1);
  DigramShape b = ShapeWithLabel(0, 2);
  // a: 3 occurrences, b: 2.
  index.Add(a, 0, 1);
  index.Add(a, 2, 3);
  index.Add(a, 4, 5);
  index.Add(b, 6, 7);
  index.Add(b, 8, 9);
  DigramId top = index.PopMaxDigram();
  ASSERT_NE(top, kInvalidDigram);
  EXPECT_TRUE(index.digram(top).shape == a);
  EXPECT_EQ(index.digram(top).count, 3u);
  DigramId second = index.PopMaxDigram();
  EXPECT_TRUE(index.digram(second).shape == b);
  EXPECT_EQ(index.PopMaxDigram(), kInvalidDigram);
}

TEST(OccurrenceIndexTest, SingletonsNeverPop) {
  OccurrenceIndex index(100);
  index.Add(ShapeWithLabel(0, 1), 0, 1);
  EXPECT_EQ(index.PopMaxDigram(), kInvalidDigram);
}

TEST(OccurrenceIndexTest, RemovalDemotesDigram) {
  OccurrenceIndex index(100);
  DigramShape a = ShapeWithLabel(0, 1);
  OccId o1 = index.Add(a, 0, 1);
  index.Add(a, 2, 3);
  index.Remove(o1);
  // Count dropped to 1: no active digram remains.
  EXPECT_EQ(index.PopMaxDigram(), kInvalidDigram);
}

TEST(OccurrenceIndexTest, ReAddAfterDrainRevives) {
  OccurrenceIndex index(100);
  DigramShape a = ShapeWithLabel(3, 4);
  OccId o1 = index.Add(a, 0, 1);
  OccId o2 = index.Add(a, 2, 3);
  index.Remove(o1);
  index.Remove(o2);
  EXPECT_EQ(index.PopMaxDigram(), kInvalidDigram);
  index.Add(a, 4, 5);
  index.Add(a, 6, 7);
  DigramId top = index.PopMaxDigram();
  ASSERT_NE(top, kInvalidDigram);
  EXPECT_EQ(index.digram(top).count, 2u);
}

TEST(OccurrenceIndexTest, ListLinksSurviveMiddleRemoval) {
  OccurrenceIndex index(100);
  DigramShape a = ShapeWithLabel(0, 1);
  index.Add(a, 0, 1);
  OccId mid = index.Add(a, 2, 3);
  index.Add(a, 4, 5);
  index.Remove(mid);
  DigramId top = index.PopMaxDigram();
  ASSERT_NE(top, kInvalidDigram);
  // Walk the list: must see exactly the two surviving occurrences.
  int count = 0;
  for (OccId o = index.FirstOccurrence(top); o != kInvalidOcc;
       o = index.occ(o).next) {
    ++count;
    EXPECT_NE(index.occ(o).edge0, 2u);
  }
  EXPECT_EQ(count, 2);
}

TEST(OccurrenceIndexTest, TopBucketScansForTrueMax) {
  // Bucket cap is sqrt(16) = 4: counts 5 and 7 land in the same top
  // bucket; PopMax must still return the 7.
  OccurrenceIndex index(16);
  DigramShape a = ShapeWithLabel(0, 1);
  DigramShape b = ShapeWithLabel(0, 2);
  EdgeId e = 0;
  for (int i = 0; i < 5; ++i, e += 2) index.Add(a, e, e + 1);
  for (int i = 0; i < 7; ++i, e += 2) index.Add(b, e, e + 1);
  DigramId top = index.PopMaxDigram();
  EXPECT_TRUE(index.digram(top).shape == b);
  EXPECT_EQ(index.digram(top).count, 7u);
}

TEST(OccurrenceIndexTest, OccurrenceArenaRecyclesSlots) {
  OccurrenceIndex index(100);
  DigramShape a = ShapeWithLabel(0, 1);
  OccId o1 = index.Add(a, 0, 1);
  index.Remove(o1);
  OccId o2 = index.Add(a, 2, 3);
  EXPECT_EQ(o1, o2);  // freed slot reused
  EXPECT_EQ(index.total_occurrences_added(), 2u);
}

TEST(OccurrenceIndexTest, OtherEdgeHelper) {
  Occurrence o;
  o.edge0 = 10;
  o.edge1 = 20;
  EXPECT_EQ(o.other(10), 20u);
  EXPECT_EQ(o.other(20), 10u);
}

}  // namespace
}  // namespace grepair
