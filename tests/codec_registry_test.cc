// Tests for the polymorphic codec API: every registered codec must
// round-trip compress -> serialize -> deserialize -> decompress back to
// the input graph, options must be validated, capabilities must gate
// the query entry points, and unknown names must fail with kNotFound.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/api/grepair_api.h"
#include "src/baselines/k2_compressor.h"

namespace grepair {
namespace api {
namespace {

// Single-label simple graph every codec (including the unlabeled
// baselines) accepts.
GeneratedGraph UniversalInput() { return BarabasiAlbert(300, 3, 7); }

// Unlabeled sorted-unique edge set; the unlabeled baselines (hn, lm,
// repair-adj) reproduce exactly this.
std::vector<std::pair<uint32_t, uint32_t>> EdgeSet(const Hypergraph& g) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (const auto& e : g.edges()) {
    if (e.att.size() == 2) edges.push_back({e.att[0], e.att[1]});
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

class CodecRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(CodecRoundTrip, CompressSerializeDeserializeDecompress) {
  GeneratedGraph gg = UniversalInput();
  auto codec = CodecRegistry::Create(GetParam());
  ASSERT_TRUE(codec.ok()) << codec.status().ToString();
  EXPECT_EQ(codec.value()->name(), GetParam());

  auto rep = codec.value()->Compress(gg.graph, gg.alphabet);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep.value()->num_nodes(), gg.graph.num_nodes());
  EXPECT_GT(rep.value()->ByteSize(), 0u);

  auto bytes = rep.value()->Serialize();
  ASSERT_FALSE(bytes.empty());
  auto back = codec.value()->Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value()->num_nodes(), gg.graph.num_nodes());

  auto decompressed = back.value()->Decompress();
  ASSERT_TRUE(decompressed.ok()) << decompressed.status().ToString();
  EXPECT_EQ(decompressed.value().num_nodes(), gg.graph.num_nodes());
  EXPECT_EQ(EdgeSet(decompressed.value()), EdgeSet(gg.graph));
}

TEST_P(CodecRoundTrip, NeighborQueriesMatchCapabilities) {
  GeneratedGraph gg = UniversalInput();
  auto codec = CodecRegistry::Create(GetParam()).ValueOrDie();
  auto rep = codec->Compress(gg.graph, gg.alphabet);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();

  // Ground-truth out-neighbors of node 0.
  std::vector<uint64_t> expected;
  for (const auto& e : gg.graph.edges()) {
    if (e.att[0] == 0) expected.push_back(e.att[1]);
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());

  auto out = rep.value()->OutNeighbors(0);
  if (codec->capabilities() & kNeighborQueries) {
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out.value(), expected);
    auto oob = rep.value()->OutNeighbors(gg.graph.num_nodes() + 5);
    EXPECT_FALSE(oob.ok());
  } else {
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kUnimplemented);
  }

  auto reach = rep.value()->Reachable(0, 1);
  if (!(codec->capabilities() & kReachabilityQueries)) {
    ASSERT_FALSE(reach.ok());
    EXPECT_EQ(reach.status().code(), StatusCode::kUnimplemented);
  } else {
    ASSERT_TRUE(reach.ok()) << reach.status().ToString();
  }
}

TEST_P(CodecRoundTrip, RejectsUnknownOption) {
  GeneratedGraph gg = UniversalInput();
  auto codec = CodecRegistry::Create(GetParam()).ValueOrDie();
  CodecOptions options;
  options.Set("definitely-not-an-option", "1");
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTrip,
                         ::testing::ValuesIn(CodecRegistry::Names()),
                         [](const auto& suite_info) {
                           std::string name = suite_info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           std::replace(name.begin(), name.end(), ':', '_');
                           return name;
                         });

TEST(CodecRegistryTest, ListsAllBuiltins) {
  auto names = CodecRegistry::Names();
  for (const char* expected :
       {"deflate", "grepair", "hn", "k2", "lm", "repair-adj"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " not registered";
  }
}

TEST(CodecRegistryTest, UnknownNameIsNotFound) {
  auto codec = CodecRegistry::Create("no-such-codec");
  ASSERT_FALSE(codec.ok());
  EXPECT_EQ(codec.status().code(), StatusCode::kNotFound);
  // The error names the known codecs so CLI users can self-serve.
  EXPECT_NE(codec.status().message().find("grepair"), std::string::npos);
}

TEST(CodecRegistryTest, LabeledGraphsRejectedByUnlabeledBaselines) {
  GeneratedGraph gg = ErdosRenyi(100, 300, 3, /*num_labels=*/4);
  for (const char* name : {"hn", "lm", "repair-adj"}) {
    auto codec = CodecRegistry::Create(name).ValueOrDie();
    auto rep = codec->Compress(gg.graph, gg.alphabet);
    ASSERT_FALSE(rep.ok()) << name;
    EXPECT_EQ(rep.status().code(), StatusCode::kInvalidArgument) << name;
    EXPECT_FALSE(codec->capabilities() & kSupportsLabels) << name;
  }
  // The labeled codecs accept the same graph.
  for (const char* name : {"grepair", "k2", "deflate"}) {
    auto codec = CodecRegistry::Create(name).ValueOrDie();
    EXPECT_TRUE(codec->capabilities() & kSupportsLabels) << name;
    auto rep = codec->Compress(gg.graph, gg.alphabet);
    ASSERT_TRUE(rep.ok()) << name << ": " << rep.status().ToString();
    auto round = codec->Deserialize(rep.value()->Serialize());
    ASSERT_TRUE(round.ok()) << name;
    auto graph = round.value()->Decompress();
    ASSERT_TRUE(graph.ok()) << name;
    EXPECT_TRUE(graph.value().EqualUpToEdgeOrder(gg.graph)) << name;
  }
}

TEST(CodecRegistryTest, HyperedgesGatedByCapability) {
  Alphabet alphabet;
  alphabet.Add("e", 2);
  alphabet.Add("H", 3);
  Hypergraph g(6);
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(1, 2, 0);
  g.AddEdge(1, {3, 4, 5});
  for (const auto& name : CodecRegistry::Names()) {
    auto codec = CodecRegistry::Create(name).ValueOrDie();
    auto rep = codec->Compress(g, alphabet);
    if (codec->capabilities() & kSupportsHyperedges) {
      ASSERT_TRUE(rep.ok()) << name << ": " << rep.status().ToString();
      auto round = codec->Deserialize(rep.value()->Serialize());
      ASSERT_TRUE(round.ok()) << name;
      auto back = round.value()->Decompress();
      ASSERT_TRUE(back.ok()) << name;
      EXPECT_TRUE(back.value().EqualUpToEdgeOrder(g)) << name;
    } else {
      EXPECT_FALSE(rep.ok()) << name;
    }
  }
}

TEST(CodecRegistryTest, GrepairPreservesOriginalIdsThroughSerialization) {
  GeneratedGraph gg = RdfTypes(2000, 20, 11);
  auto codec = CodecRegistry::Create("grepair").ValueOrDie();
  auto rep = codec->Compress(gg.graph, gg.alphabet);
  ASSERT_TRUE(rep.ok());
  auto back = codec->Deserialize(rep.value()->Serialize());
  ASSERT_TRUE(back.ok());
  // Exact reconstruction, original ids included (psi' rides along).
  auto graph = back.value()->Decompress();
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph.value().EqualUpToEdgeOrder(gg.graph));
  // Queries on the deserialized rep agree with the original graph.
  std::vector<uint64_t> expected;
  for (const auto& e : gg.graph.edges()) {
    if (e.att[0] == 25) expected.push_back(e.att[1]);
  }
  std::sort(expected.begin(), expected.end());
  auto out = back.value()->OutNeighbors(25);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), expected);
}

TEST(CodecRegistryTest, CorruptedSerializationsFailCleanlyNotUB) {
  // Deserialize is an untrusted-input surface: flipping bytes anywhere
  // (headers, grammar, the psi' mapping tail) must yield a Status or a
  // still-consistent rep — never a crash or out-of-bounds access.
  GeneratedGraph gg = BarabasiAlbert(200, 3, 13);
  for (const auto& name : CodecRegistry::Names()) {
    auto codec = CodecRegistry::Create(name).ValueOrDie();
    auto rep = codec->Compress(gg.graph, gg.alphabet);
    ASSERT_TRUE(rep.ok()) << name;
    auto bytes = rep.value()->Serialize();
    for (size_t off = 0; off < bytes.size(); off += 11) {
      auto bad = bytes;
      bad[off] ^= 0xFF;
      auto back = codec->Deserialize(bad);
      if (back.ok()) {
        auto graph = back.value()->Decompress();  // must not crash
        (void)graph;
      }
    }
  }
}

TEST(CodecOptionsTest, ParseAndTypedGetters) {
  auto parsed = CodecOptions::Parse("k=3,prune=false,order=bfs");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().GetInt("k", 2).value(), 3);
  EXPECT_EQ(parsed.value().GetBool("prune", true).value(), false);
  EXPECT_EQ(parsed.value().GetString("order", ""), "bfs");
  EXPECT_EQ(parsed.value().GetInt("absent", 42).value(), 42);

  EXPECT_FALSE(CodecOptions::Parse("novalue").ok());
  EXPECT_FALSE(CodecOptions::Parse("=x").ok());
  ASSERT_TRUE(CodecOptions::Parse("").ok());

  auto bad_int = CodecOptions::Parse("k=banana");
  ASSERT_TRUE(bad_int.ok());
  EXPECT_FALSE(bad_int.value().GetInt("k", 2).ok());
  auto bad_bool = CodecOptions::Parse("prune=maybe");
  ASSERT_TRUE(bad_bool.ok());
  EXPECT_FALSE(bad_bool.value().GetBool("prune", true).ok());
}

TEST(CodecOptionsTest, CodecSpecificOptionsApply) {
  GeneratedGraph gg = UniversalInput();
  auto codec = CodecRegistry::Create("grepair").ValueOrDie();
  CodecOptions no_prune;
  no_prune.Set("prune", "false");
  no_prune.Set("max-rank", "3");
  auto rep = codec->Compress(gg.graph, gg.alphabet, no_prune);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto graph = rep.value()->Decompress();
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph.value().EqualUpToEdgeOrder(gg.graph));

  auto k2 = CodecRegistry::Create("k2").ValueOrDie();
  CodecOptions k4;
  k4.Set("k", "4");
  auto rep4 = k2->Compress(gg.graph, gg.alphabet, k4);
  ASSERT_TRUE(rep4.ok()) << rep4.status().ToString();
  auto back4 = k2->Deserialize(rep4.value()->Serialize());
  ASSERT_TRUE(back4.ok());
  EXPECT_EQ(EdgeSet(back4.value()->Decompress().ValueOrDie()),
            EdgeSet(gg.graph));
}

TEST(K2BoundsTest, OutOfAlphabetLabelReturnsEmptyNotUB) {
  GeneratedGraph gg = ErdosRenyi(50, 200, 9, 2);
  auto rep = K2GraphRepresentation::Build(gg.graph, gg.alphabet);
  EXPECT_TRUE(rep.OutNeighbors(0, 999).empty());
  EXPECT_TRUE(rep.InNeighbors(0, 999).empty());
  EXPECT_FALSE(rep.HasEdge(0, 1, 999));
  EXPECT_TRUE(rep.OutNeighbors(1000, 0).empty());
  EXPECT_TRUE(rep.InNeighbors(1000, 0).empty());
  EXPECT_FALSE(rep.HasEdge(1000, 0, 0));
  EXPECT_FALSE(rep.HasEdge(0, 1000, 0));
}

}  // namespace
}  // namespace api
}  // namespace grepair
