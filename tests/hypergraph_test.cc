// Unit tests for the hypergraph core: size metrics of Section II,
// validation of restrictions (1)-(3), and simple-graph construction.

#include <gtest/gtest.h>

#include "src/graph/hypergraph.h"

namespace grepair {
namespace {

Alphabet TwoLabels() {
  Alphabet a;
  a.Add("a", 2);
  a.Add("b", 2);
  return a;
}

TEST(HypergraphTest, SizeMetricsFollowPaper) {
  // |g|_E counts 1 per rank<=2 edge and rank(e) per hyperedge.
  Alphabet alpha;
  alpha.Add("a", 2);
  alpha.Add("u", 1);
  alpha.Add("H", 3);
  Hypergraph g(4);
  g.AddSimpleEdge(0, 1, 0);
  g.AddEdge(1, {2});
  g.AddEdge(2, {0, 2, 3});
  EXPECT_EQ(g.NodeSize(), 4u);
  EXPECT_EQ(g.EdgeSize(), 1u + 1u + 3u);
  EXPECT_EQ(g.TotalSize(), 9u);
  EXPECT_TRUE(g.Validate(alpha).ok());
}

TEST(HypergraphTest, ValidateRejectsRankMismatch) {
  Alphabet alpha = TwoLabels();
  Hypergraph g(3);
  g.AddEdge(0, {0, 1, 2});  // label "a" has rank 2
  EXPECT_FALSE(g.Validate(alpha).ok());
}

TEST(HypergraphTest, ValidateRejectsRepeatedAttachment) {
  Alphabet alpha = TwoLabels();
  Hypergraph g(2);
  g.AddEdge(0, {1, 1});  // restriction (1)
  EXPECT_FALSE(g.Validate(alpha).ok());
}

TEST(HypergraphTest, ValidateRejectsRepeatedExternal) {
  Alphabet alpha = TwoLabels();
  Hypergraph g(2);
  g.AddSimpleEdge(0, 1, 0);
  g.SetExternal({0, 0});  // restriction (2)
  EXPECT_FALSE(g.Validate(alpha).ok());
}

TEST(HypergraphTest, ValidateRejectsMissingNode) {
  Alphabet alpha = TwoLabels();
  Hypergraph g(2);
  g.AddSimpleEdge(0, 5, 0);
  EXPECT_FALSE(g.Validate(alpha).ok());
}

TEST(HypergraphTest, IsSimple) {
  Hypergraph g(3);
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(1, 0, 0);  // opposite direction: fine
  g.AddSimpleEdge(0, 1, 1);  // other label: fine
  EXPECT_TRUE(g.IsSimple());
  g.AddSimpleEdge(0, 1, 0);  // exact duplicate
  EXPECT_FALSE(g.IsSimple());
}

TEST(HypergraphTest, BuildSimpleGraphFiltersLoopsAndDuplicates) {
  Hypergraph g = BuildSimpleGraph(
      4, {{0, 1, 0}, {1, 1, 0}, {0, 1, 0}, {0, 1, 1}, {2, 3, 0}});
  EXPECT_EQ(g.num_edges(), 3u);  // loop and duplicate dropped
  EXPECT_TRUE(g.IsSimple());
}

TEST(HypergraphTest, EqualUpToEdgeOrder) {
  Hypergraph g(3), h(3);
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(1, 2, 1);
  h.AddSimpleEdge(1, 2, 1);
  h.AddSimpleEdge(0, 1, 0);
  EXPECT_TRUE(g.EqualUpToEdgeOrder(h));
  EXPECT_FALSE(g == h);  // order differs
  h.AddSimpleEdge(2, 0, 0);
  EXPECT_FALSE(g.EqualUpToEdgeOrder(h));
}

TEST(HypergraphTest, IncidenceAndDegrees) {
  Hypergraph g(4);
  g.AddSimpleEdge(0, 1, 0);
  g.AddEdge(0, {1, 2});
  auto inc = g.BuildIncidence();
  EXPECT_EQ(inc[0].size(), 1u);
  EXPECT_EQ(inc[1].size(), 2u);
  EXPECT_EQ(inc[3].size(), 0u);
  auto deg = g.Degrees();
  EXPECT_EQ(deg[1], 2u);
  EXPECT_EQ(deg[3], 0u);
}

TEST(HypergraphTest, RemoveEdgesIf) {
  Hypergraph g(3);
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(1, 2, 1);
  g.AddSimpleEdge(2, 0, 0);
  g.RemoveEdgesIf([](const HEdge& e) { return e.label == 0; });
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(0).label, 1u);
  EXPECT_EQ(g.num_nodes(), 3u);  // nodes untouched
}

TEST(HypergraphTest, ExternalNodesAndRank) {
  Hypergraph g(3);
  g.AddSimpleEdge(0, 1, 0);
  g.SetExternal({2, 0});
  EXPECT_EQ(g.rank(), 2);
  EXPECT_FALSE(g.AllNodesExternal());
}

}  // namespace
}  // namespace grepair
