// Tests for the node orders of Section III-B1, including the paper's
// Figure 8 FP-refinement example.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/node_order.h"

namespace grepair {
namespace {

// Figure 8 of the paper: an undirected 4-node graph whose degree
// coloring is (1,1,3,2)-ish and refines to 4 distinct classes after one
// iteration. We model undirected edges as two directed labeled edges?
// No - the figure is unlabeled/undirected; a faithful encoding that
// keeps the degree structure is a single label with both directions
// merged into incident-edge tuples. We instead check the invariant the
// figure demonstrates: the center of a star refines away from leaves,
// and a path's ends split from its middle.
TEST(FpRefinementTest, Figure8LikePathStar) {
  // Graph: leaves 0,1 attach to center 2; 2 attaches to 3 (figure's
  // shape: degrees 1,1,3,2 after adding edge 3->0? Use the exact figure:
  // center c with neighbors {a, b, d}, and d-e edge.
  //      0   1
  //       \ /
  //        2 --- 3
  // degrees: 1,1,3,1 -> classes {0,1,3}, {2}; after refinement leaves
  // 0,1 (neighbor color of degree-3 node) split from 3? No: 3's only
  // neighbor is also node 2. So 0,1,3 stay equivalent: 3 classes total?
  // 0,1,3 all have signature (deg 1, neighbor 2): 2 classes.
  Hypergraph g(4);
  g.AddSimpleEdge(0, 2, 0);
  g.AddSimpleEdge(1, 2, 0);
  g.AddSimpleEdge(2, 3, 0);
  auto fp = ComputeFpRefinement(g);
  // 0 and 1 are genuinely isomorphic (both point into 2).
  EXPECT_EQ(fp.colors[0], fp.colors[1]);
  // 3 differs: its edge arrives from 2 (direction differs).
  EXPECT_NE(fp.colors[3], fp.colors[0]);
  EXPECT_NE(fp.colors[2], fp.colors[0]);
  EXPECT_EQ(fp.num_classes, 3u);
}

TEST(FpRefinementTest, PaperFigure8Undirected) {
  // The figure's exact graph, edges made symmetric (undirected):
  // nodes: a(deg1) b(deg1) attached to c(deg3); c attached to d(deg2);
  // d attached to e(deg1). Start colors (degrees): a=1,b=1,e=1, d=2,
  // c=3. After one refinement e (neighbor d) splits from a,b
  // (neighbor c). That matches the figure's final coloring with 4
  // classes: {a,b}, {e}, {d}, {c}.
  Hypergraph g(5);
  auto undirected = [&](NodeId u, NodeId v) {
    g.AddSimpleEdge(u, v, 0);
    g.AddSimpleEdge(v, u, 0);
  };
  undirected(0, 2);  // a-c
  undirected(1, 2);  // b-c
  undirected(2, 3);  // c-d
  undirected(3, 4);  // d-e
  auto fp = ComputeFpRefinement(g);
  EXPECT_EQ(fp.colors[0], fp.colors[1]);
  EXPECT_NE(fp.colors[4], fp.colors[0]);
  EXPECT_EQ(fp.num_classes, 4u);
}

TEST(FpRefinementTest, VertexTransitiveGraphHasOneClass) {
  // Directed cycle: every node is equivalent.
  const uint32_t n = 12;
  Hypergraph g(n);
  for (uint32_t v = 0; v < n; ++v) g.AddSimpleEdge(v, (v + 1) % n, 0);
  auto fp = ComputeFpRefinement(g);
  EXPECT_EQ(fp.num_classes, 1u);
}

TEST(FpRefinementTest, DisjointCopiesShareClasses) {
  // Two copies of the same structure: classes must not double.
  Hypergraph g(8);
  auto add = [&](NodeId base) {
    g.AddSimpleEdge(base + 0, base + 1, 0);
    g.AddSimpleEdge(base + 1, base + 2, 0);
    g.AddSimpleEdge(base + 2, base + 3, 1);
  };
  add(0);
  add(4);
  auto fp = ComputeFpRefinement(g);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(fp.colors[v], fp.colors[v + 4]) << "node " << v;
  }
  EXPECT_EQ(fp.num_classes, 4u);
}

TEST(FpRefinementTest, LabelsRefine) {
  // Same topology, different labels must separate nodes.
  Hypergraph g(4);
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(2, 3, 1);
  auto fp = ComputeFpRefinement(g);
  EXPECT_NE(fp.colors[0], fp.colors[2]);
  EXPECT_NE(fp.colors[1], fp.colors[3]);
}

TEST(FpRefinementTest, PathSplitsToFixpoint) {
  // Directed path of 7 nodes: FP distinguishes positions pairwise
  // (7 classes), which plain degree (FP0) cannot (3 classes).
  Hypergraph g(7);
  for (uint32_t v = 0; v + 1 < 7; ++v) g.AddSimpleEdge(v, v + 1, 0);
  auto fp = ComputeFpRefinement(g);
  EXPECT_EQ(fp.num_classes, 7u);
  EXPECT_GE(fp.iterations, 2);
}

class OrderPermutation : public ::testing::TestWithParam<NodeOrderKind> {};

TEST_P(OrderPermutation, IsPermutation) {
  Hypergraph g(9);
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(1, 2, 0);
  g.AddSimpleEdge(3, 4, 1);
  g.AddEdge(0, {5, 6});
  auto order = ComputeNodeOrder(g, GetParam(), 7);
  ASSERT_EQ(order.size(), 9u);
  std::vector<NodeId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId v = 0; v < 9; ++v) EXPECT_EQ(sorted[v], v);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, OrderPermutation,
    ::testing::Values(NodeOrderKind::kNatural, NodeOrderKind::kBfs,
                      NodeOrderKind::kDfs, NodeOrderKind::kRandom,
                      NodeOrderKind::kFp0, NodeOrderKind::kFp),
    [](const auto& suite_info) { return NodeOrderKindName(suite_info.param); });

TEST(NodeOrderTest, Fp0SortsByDegree) {
  Hypergraph g(4);
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(0, 2, 0);
  g.AddSimpleEdge(0, 3, 0);
  auto order = ComputeNodeOrder(g, NodeOrderKind::kFp0);
  EXPECT_EQ(order.back(), 0u);  // the hub has the highest degree
}

TEST(NodeOrderTest, ParseNames) {
  NodeOrderKind kind;
  EXPECT_TRUE(ParseNodeOrderKind("fp", &kind));
  EXPECT_EQ(kind, NodeOrderKind::kFp);
  EXPECT_TRUE(ParseNodeOrderKind("bfs", &kind));
  EXPECT_FALSE(ParseNodeOrderKind("nope", &kind));
  EXPECT_EQ(NodeOrderKindName(NodeOrderKind::kFp0), "fp0");
}

TEST(NodeOrderTest, RandomOrderSeedDependent) {
  Hypergraph g(64);
  for (uint32_t v = 0; v + 1 < 64; ++v) g.AddSimpleEdge(v, v + 1, 0);
  auto a = ComputeNodeOrder(g, NodeOrderKind::kRandom, 1);
  auto b = ComputeNodeOrder(g, NodeOrderKind::kRandom, 2);
  auto c = ComputeNodeOrder(g, NodeOrderKind::kRandom, 1);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace grepair
