// The multi-tenant serving tier end to end: one serve::ShardServer
// hosting several corpora must answer every client byte-identically
// to local opens of the same containers, under 8-thread interleaved
// load; the SSD shard tier must keep answering with the server gone,
// fail closed on corrupt or truncated cache files (refetching
// remotely), and honor its LRU byte budget; the redial backoff gate
// must fail fast and name the dead peer; corpus discovery and the
// GRNF STATS verb round-trip. Runs under the ASan/UBSan and TSan CI
// legs — the interleaved-tenant test doubles as the data-race net for
// the registry's shared-server path.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "src/api/grepair_api.h"
#include "src/serve/placement.h"
#include "src/serve/pool.h"
#include "src/util/mmap_file.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"
#include "src/serve/stats.h"
#include "src/serve/tiered.h"

namespace grepair {
namespace {

std::vector<uint8_t> CompressSharded(const GeneratedGraph& gg, int shards) {
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", std::to_string(shards));
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  EXPECT_TRUE(rep.ok()) << rep.status().ToString();
  return dynamic_cast<shard::ShardedRep*>(rep.value().get())->SerializeV2();
}

std::vector<std::vector<uint64_t>> LocalTruth(
    const std::vector<uint8_t>& container, uint64_t num_nodes) {
  auto local = shard::ShardedRep::Deserialize(SpanOf(container));
  EXPECT_TRUE(local.ok()) << local.status().ToString();
  std::vector<std::vector<uint64_t>> truth(num_nodes);
  for (uint64_t v = 0; v < num_nodes; ++v) {
    auto r = local.value()->OutNeighbors(v);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    truth[v] = r.value();
  }
  return truth;
}

// A fresh per-test scratch directory, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path(::testing::TempDir() + "grepair_serve_" + tag) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::string path;
};

// Bytes the shard tier holds on disk (the .grdir directory sidecar
// is bookkeeping, not cached payload, and sits outside the budget).
uint64_t DiskBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".shard") {
      total += entry.file_size();
    }
  }
  return total;
}

// Per-shard payload lengths of a serialized container, via the same
// directory parse the server performs.
std::vector<shard::ShardDirEntry> DirectoryRows(
    const std::vector<uint8_t>& container) {
  uint64_t dir_off = 0;
  auto region = shard::LocateV2DirectoryRegion(SpanOf(container), &dir_off);
  EXPECT_TRUE(region.ok());
  auto dir = shard::ParseV2Directory(region.value(), dir_off);
  EXPECT_TRUE(dir.ok());
  return std::move(dir).ValueOrDie().rows;
}

size_t CountDataShards(const std::vector<shard::ShardDirEntry>& rows) {
  size_t n = 0;
  for (const auto& row : rows) {
    if (row.length > 0) ++n;
  }
  return n;
}

TEST(ServeTierTest, TwoTenantsEightThreadsByteIdenticalPerCorpus) {
  GeneratedGraph web = BarabasiAlbert(110, 3, 71);
  GeneratedGraph cite = ErdosRenyi(90, 360, 73);
  std::vector<uint8_t> web_bytes = CompressSharded(web, 4);
  std::vector<uint8_t> cite_bytes = CompressSharded(cite, 3);
  auto web_truth = LocalTruth(web_bytes, web.graph.num_nodes());
  auto cite_truth = LocalTruth(cite_bytes, cite.graph.num_nodes());

  serve::CorpusRegistry registry;
  ASSERT_TRUE(registry.AddBytes("web", SpanOf(web_bytes)).ok());
  ASSERT_TRUE(registry.AddBytes("cite", SpanOf(cite_bytes)).ok());
  auto server = serve::ShardServer::Start(std::move(registry));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // One shared rep per tenant, four threads each, interleaved single
  // and batch queries: the server must never cross-serve corpora.
  serve::OpenOptions options;
  options.pool_size = 2;
  auto web_rep =
      serve::OpenRemoteContainer(server.value()->host_port() + "/web",
                                 options);
  ASSERT_TRUE(web_rep.ok()) << web_rep.status().ToString();
  auto cite_rep =
      serve::OpenRemoteContainer(server.value()->host_port() + "/cite",
                                 options);
  ASSERT_TRUE(cite_rep.ok()) << cite_rep.status().ToString();
  EXPECT_EQ(web_rep.value()->num_nodes(), web.graph.num_nodes());
  EXPECT_EQ(cite_rep.value()->num_nodes(), cite.graph.num_nodes());

  std::atomic<int> failures{0};
  auto worker = [&failures](api::CompressedRep* rep,
                            const std::vector<std::vector<uint64_t>>& truth,
                            int stride) {
    if (stride % 2 == 0) {
      std::vector<uint64_t> all(truth.size());
      for (uint64_t v = 0; v < all.size(); ++v) all[v] = v;
      auto batch = rep->OutNeighborsBatch(all);
      if (!batch.ok()) {
        ++failures;
        return;
      }
      for (uint64_t v = 0; v < all.size(); ++v) {
        if (batch.value()[v] != truth[v]) ++failures;
      }
    } else {
      for (uint64_t v = static_cast<uint64_t>(stride); v < truth.size();
           v += 3) {
        auto r = rep->OutNeighbors(v);
        if (!r.ok() || r.value() != truth[v]) ++failures;
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(worker, web_rep.value().get(), std::cref(web_truth),
                         t);
    threads.emplace_back(worker, cite_rep.value().get(),
                         std::cref(cite_truth), t);
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // The server attributed traffic to the right tenants.
  auto stats = server.value()->stats();
  ASSERT_EQ(stats.corpora.size(), 2u);
  EXPECT_EQ(stats.corpora[0].name, "web");
  EXPECT_EQ(stats.corpora[1].name, "cite");
  for (const auto& corpus : stats.corpora) {
    EXPECT_GT(corpus.requests, 0u) << corpus.name;
    uint64_t histogram_sum = 0;
    for (uint64_t hits : corpus.shard_hits) histogram_sum += hits;
    EXPECT_EQ(histogram_sum, corpus.requests) << corpus.name;
  }
}

TEST(ServeTierTest, AmbiguousAndUnknownCorpusNamesFailClosed) {
  GeneratedGraph gg = BarabasiAlbert(50, 3, 79);
  std::vector<uint8_t> a = CompressSharded(gg, 2);
  std::vector<uint8_t> b = CompressSharded(gg, 3);
  serve::CorpusRegistry registry;
  ASSERT_TRUE(registry.AddBytes("a", SpanOf(a)).ok());
  ASSERT_TRUE(registry.AddBytes("b", SpanOf(b)).ok());
  auto server = serve::ShardServer::Start(std::move(registry));
  ASSERT_TRUE(server.ok());

  // No name against a two-tenant server: ambiguous, names the options.
  auto ambiguous = api::OpenRemote(server.value()->host_port());
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_EQ(ambiguous.status().code(), StatusCode::kInvalidArgument);

  // Unknown name: kNotFound listing what is served.
  auto unknown = api::OpenRemote(server.value()->host_port() + "/nope");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("a"), std::string::npos);
  EXPECT_NE(unknown.status().message().find("b"), std::string::npos);

  // Both real names still resolve.
  EXPECT_TRUE(api::OpenRemote(server.value()->host_port() + "/a").ok());
  EXPECT_TRUE(api::OpenRemote(server.value()->host_port() + "/b").ok());
}

TEST(ServeTierTest, DirectoryDiscoveryServesEveryContainer) {
  ScratchDir scratch("discovery");
  GeneratedGraph web = BarabasiAlbert(60, 3, 83);
  GeneratedGraph cite = BarabasiAlbert(40, 3, 89);
  ASSERT_TRUE(WriteFileBytes(scratch.path + "/web.grc",
                             CompressSharded(web, 3))
                  .ok());
  ASSERT_TRUE(WriteFileBytes(scratch.path + "/cite.grc",
                             CompressSharded(cite, 2))
                  .ok());
  // Sidecar noise a corpus directory might hold: not servable, skipped.
  ASSERT_TRUE(WriteFileBytes(scratch.path + "/README.txt",
                             std::vector<uint8_t>{'h', 'i'})
                  .ok());
  std::filesystem::create_directories(scratch.path + "/subdir");

  serve::CorpusRegistry registry;
  std::vector<std::string> added;
  ASSERT_TRUE(registry.DiscoverDirectory(scratch.path, &added).ok());
  EXPECT_EQ(added, (std::vector<std::string>{"cite", "web"}));
  ASSERT_EQ(registry.size(), 2u);

  auto server = serve::ShardServer::Start(std::move(registry));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto rep = api::OpenRemote(server.value()->host_port() + "/web");
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep.value()->num_nodes(), web.graph.num_nodes());
}

TEST(ServeTierTest, SsdWarmCacheAnswersWithServerStopped) {
  ScratchDir scratch("warm");
  GeneratedGraph gg = BarabasiAlbert(80, 3, 97);
  std::vector<uint8_t> bytes = CompressSharded(gg, 3);
  auto truth = LocalTruth(bytes, gg.graph.num_nodes());
  size_t data_shards = CountDataShards(DirectoryRows(bytes));

  serve::CorpusRegistry registry;
  ASSERT_TRUE(registry.AddBytes("g", SpanOf(bytes)).ok());
  auto server = serve::ShardServer::Start(std::move(registry));
  ASSERT_TRUE(server.ok());

  serve::OpenOptions options;
  options.ssd_cache_dir = scratch.path + "/cache";

  // Pass 1 (cold): every shard faults over the wire and lands on disk.
  {
    auto rep = serve::OpenRemoteContainer(server.value()->host_port(),
                                          options);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    for (uint64_t v = 0; v < truth.size(); ++v) {
      auto r = rep.value()->OutNeighbors(v);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r.value(), truth[v]);
    }
    auto stats = rep.value()->query_stats();
    EXPECT_EQ(stats.tier_cold_fetches, data_shards);
    EXPECT_EQ(stats.remote_fetches, data_shards);
    EXPECT_EQ(stats.tier_warm_hits, 0u);
  }

  // Pass 2 (warm): open while the server is still up (the directory
  // crosses the wire), then stop it. Every payload must come off the
  // SSD tier — zero remote fetches with the server gone.
  auto rep = serve::OpenRemoteContainer(server.value()->host_port(),
                                        options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  server.value()->Stop();
  for (uint64_t v = 0; v < truth.size(); ++v) {
    auto r = rep.value()->OutNeighbors(v);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value(), truth[v]);
  }
  auto stats = rep.value()->query_stats();
  EXPECT_EQ(stats.tier_warm_hits, data_shards);
  EXPECT_EQ(stats.tier_cold_fetches, 0u);
  EXPECT_EQ(stats.remote_fetches, 0u);
  EXPECT_EQ(stats.remote_bytes, 0u);
}

TEST(ServeTierTest, OfflineOpenFromWarmTierAfterServerDies) {
  ScratchDir scratch("offline");
  GeneratedGraph gg = BarabasiAlbert(70, 3, 131);
  std::vector<uint8_t> bytes = CompressSharded(gg, 3);
  auto truth = LocalTruth(bytes, gg.graph.num_nodes());

  serve::CorpusRegistry registry;
  ASSERT_TRUE(registry.AddBytes("g", SpanOf(bytes)).ok());
  auto server = serve::ShardServer::Start(std::move(registry));
  ASSERT_TRUE(server.ok());
  std::string peer = server.value()->host_port();

  serve::OpenOptions options;
  options.ssd_cache_dir = scratch.path + "/cache";

  // Warm the tier (this also persists the directory sidecar).
  {
    auto rep = serve::OpenRemoteContainer(peer, options);
    ASSERT_TRUE(rep.ok());
    for (uint64_t v = 0; v < truth.size(); ++v) {
      ASSERT_TRUE(rep.value()->OutNeighbors(v).ok());
    }
  }
  server.value()->Stop();

  // A brand-new client against the dead peer: the open itself must
  // succeed off the persisted directory, and every query answers from
  // the SSD tier without touching the network.
  auto rep = serve::OpenRemoteContainer(peer, options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto* sharded = dynamic_cast<shard::ShardedRep*>(rep.value().get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_STREQ(sharded->source_kind(), "tiered-ssd");
  for (uint64_t v = 0; v < truth.size(); ++v) {
    auto r = rep.value()->OutNeighbors(v);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value(), truth[v]);
  }
  auto stats = rep.value()->query_stats();
  EXPECT_EQ(stats.remote_fetches, 0u);
  EXPECT_GT(stats.tier_warm_hits, 0u);

  // Without the tier, the same dead peer is still a clean failure.
  auto no_tier = serve::OpenRemoteContainer(peer, serve::OpenOptions());
  ASSERT_FALSE(no_tier.ok());
  EXPECT_EQ(no_tier.status().code(), StatusCode::kUnavailable);
}

TEST(ServeTierTest, CorruptOrTruncatedCacheFilesFailClosedAndRefetch) {
  ScratchDir scratch("corrupt");
  GeneratedGraph gg = BarabasiAlbert(70, 3, 101);
  std::vector<uint8_t> bytes = CompressSharded(gg, 3);
  auto truth = LocalTruth(bytes, gg.graph.num_nodes());

  serve::CorpusRegistry registry;
  ASSERT_TRUE(registry.AddBytes("g", SpanOf(bytes)).ok());
  auto server = serve::ShardServer::Start(std::move(registry));
  ASSERT_TRUE(server.ok());

  serve::OpenOptions options;
  options.ssd_cache_dir = scratch.path + "/cache";

  // Warm the cache.
  {
    auto rep = serve::OpenRemoteContainer(server.value()->host_port(),
                                          options);
    ASSERT_TRUE(rep.ok());
    for (uint64_t v = 0; v < truth.size(); ++v) {
      ASSERT_TRUE(rep.value()->OutNeighbors(v).ok());
    }
  }

  // Vandalize every cached shard: flip a byte in one file, truncate
  // the next, alternating — both must be caught by the read-time
  // re-hash, deleted, and refetched from the server.
  size_t vandalized = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.ssd_cache_dir)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".shard") continue;  // dir sidecar
    std::string path = entry.path().string();
    auto cached = ReadFileBytes(path);
    ASSERT_TRUE(cached.ok());
    std::vector<uint8_t> mutated = std::move(cached).ValueOrDie();
    if (vandalized % 2 == 0) {
      mutated[mutated.size() / 2] ^= 0x40;  // bit flip
    } else {
      mutated.resize(mutated.size() / 2);  // truncation
    }
    ASSERT_TRUE(WriteFileBytes(path, mutated).ok());
    ++vandalized;
  }
  ASSERT_GT(vandalized, 0u);

  auto rep = serve::OpenRemoteContainer(server.value()->host_port(),
                                        options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  for (uint64_t v = 0; v < truth.size(); ++v) {
    auto r = rep.value()->OutNeighbors(v);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value(), truth[v]) << "node " << v;
  }
  auto stats = rep.value()->query_stats();
  EXPECT_EQ(stats.tier_corrupt_drops, vandalized);
  EXPECT_EQ(stats.tier_warm_hits, 0u);
  EXPECT_EQ(stats.tier_cold_fetches, vandalized);
  EXPECT_EQ(stats.remote_fetches, vandalized);

  // The refetch repaired the cache: a fresh open is warm again.
  auto repaired = serve::OpenRemoteContainer(server.value()->host_port(),
                                             options);
  ASSERT_TRUE(repaired.ok());
  for (uint64_t v = 0; v < truth.size(); ++v) {
    ASSERT_TRUE(repaired.value()->OutNeighbors(v).ok());
  }
  EXPECT_EQ(repaired.value()->query_stats().tier_warm_hits, vandalized);
  EXPECT_EQ(repaired.value()->query_stats().remote_fetches, 0u);
}

TEST(ServeTierTest, LruEvictionHonorsTheByteBudget) {
  ScratchDir scratch("lru");
  GeneratedGraph gg = BarabasiAlbert(140, 3, 103);
  std::vector<uint8_t> bytes = CompressSharded(gg, 6);
  auto truth = LocalTruth(bytes, gg.graph.num_nodes());
  auto rows = DirectoryRows(bytes);
  uint64_t total = 0, largest = 0;
  for (const auto& row : rows) {
    total += row.length;
    largest = std::max(largest, row.length);
  }
  ASSERT_GT(total, largest * 2) << "need several data shards";

  serve::CorpusRegistry registry;
  ASSERT_TRUE(registry.AddBytes("g", SpanOf(bytes)).ok());
  auto server = serve::ShardServer::Start(std::move(registry));
  ASSERT_TRUE(server.ok());

  // Budget: room for the largest shard but nowhere near all of them.
  serve::OpenOptions options;
  options.ssd_cache_dir = scratch.path + "/cache";
  options.ssd_cache_bytes = largest + total / 4;
  auto rep = serve::OpenRemoteContainer(server.value()->host_port(),
                                        options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  for (uint64_t v = 0; v < truth.size(); ++v) {
    auto r = rep.value()->OutNeighbors(v);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value(), truth[v]);
  }
  auto stats = rep.value()->query_stats();
  EXPECT_GT(stats.tier_evictions, 0u);
  EXPECT_LE(DiskBytes(options.ssd_cache_dir), options.ssd_cache_bytes);
}

TEST(ServeTierTest, DeadPeerFailsFastWithBackoffAndNamesThePeer) {
  GeneratedGraph gg = BarabasiAlbert(90, 3, 107);
  std::vector<uint8_t> bytes = CompressSharded(gg, 3);
  serve::CorpusRegistry registry;
  ASSERT_TRUE(registry.AddBytes("g", SpanOf(bytes)).ok());
  auto server = serve::ShardServer::Start(std::move(registry));
  ASSERT_TRUE(server.ok());
  std::string peer = server.value()->host_port();

  serve::OpenOptions options;
  options.pool_size = 1;
  options.io_timeout_ms = 2000;
  auto rep = serve::OpenRemoteContainer(peer, options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep.value()->num_nodes(), gg.graph.num_nodes());

  // Kill the server before any shard is materialized (a single hub
  // query would warm every shard the hub's edges touch, leaving
  // nothing remote to fail on).
  server.value()->Stop();

  // The first fetch must fail kUnavailable and the message must name
  // the dead peer (the operator needs to know *which* host is down).
  auto first = rep.value()->OutNeighbors(0);
  ASSERT_FALSE(first.ok()) << "shard fetch against a dead peer succeeded";
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(first.status().message().find(peer), std::string::npos)
      << first.status().ToString();

  // With the backoff gate closed, repeated fetches fail immediately
  // instead of re-dialing the dead peer per request.
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 25; ++i) {
    auto r = rep.value()->OutNeighbors(gg.graph.num_nodes() - 1);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
    EXPECT_NE(r.status().message().find(peer), std::string::npos);
  }
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  // 25 gated failures must cost far less than 25 full redial attempts;
  // the bound is loose (CI machines stall) but pins the fail-fast path.
  EXPECT_LT(elapsed, 5.0);
  auto stats = rep.value()->query_stats();
  EXPECT_LT(stats.pool_redials, 25u);
}

// Inner source that must never be reached: the seeding tests exercise
// the cache index alone.
class NullShardSource : public shard::ShardSource {
 public:
  const char* kind() const override { return "null"; }
  Result<ByteSpan> FetchShard(size_t, std::vector<uint8_t>*) override {
    return Status::Unavailable("null source reached");
  }
};

// LRU seeding determinism: cache files that share an mtime (coarse
// filesystem clocks make this common after a bulk warm) must enter the
// LRU in name order, so which files survive a tighter budget is a
// function of the directory contents, not readdir order or hash-map
// iteration. Two seedings over identical files must evict identically.
TEST(ServeTierTest, SeedFromDiskBreaksMtimeTiesByName) {
  GeneratedGraph gg = BarabasiAlbert(50, 3, 127);
  std::vector<uint8_t> bytes = CompressSharded(gg, 2);
  auto rows = DirectoryRows(bytes);

  const std::vector<std::string> names = {
      "0a-64.shard", "0b-64.shard", "0c-64.shard",
      "0d-64.shard", "0e-64.shard", "0f-64.shard",
  };
  auto seed_and_list = [&](const std::string& dir) {
    std::filesystem::create_directories(dir);
    std::vector<uint8_t> blob(64, 0x5a);
    for (const auto& name : names) {
      EXPECT_TRUE(WriteFileBytes(dir + "/" + name, blob).ok());
    }
    // Force one shared mtime: the tie the sort must break by name.
    auto stamp = std::filesystem::last_write_time(dir + "/" + names[0]);
    for (const auto& name : names) {
      std::filesystem::last_write_time(dir + "/" + name, stamp);
    }
    serve::TieredShardSource::Options options;
    options.cache_dir = dir;
    options.max_bytes = 3 * 64;  // room for half the files
    auto tier = serve::TieredShardSource::Create(
        std::make_shared<NullShardSource>(), rows, options);
    EXPECT_TRUE(tier.ok()) << tier.status().ToString();
    EXPECT_EQ(tier.value()->cache_bytes(), 3u * 64);
    std::vector<std::string> survivors;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".shard") {
        survivors.push_back(entry.path().filename().string());
      }
    }
    std::sort(survivors.begin(), survivors.end());
    return survivors;
  };

  ScratchDir scratch_a("seed_tie_a");
  ScratchDir scratch_b("seed_tie_b");
  auto first = seed_and_list(scratch_a.path + "/cache");
  auto second = seed_and_list(scratch_b.path + "/cache");
  // Ties insert in ascending name order, so the lexicographically
  // largest names are most-recently-used and survive the budget.
  EXPECT_EQ(first, (std::vector<std::string>{"0d-64.shard", "0e-64.shard",
                                             "0f-64.shard"}));
  EXPECT_EQ(second, first);
}

// Placement churn under load: 8 threads interleave ApplyPlacement
// (pin/unpin diffs against a moving ranking), histogram-style Prefetch
// (LocalShardSource::WarmShards through the IoEngine), and point
// queries on one shared mmap-backed rep. Then the same thread shape
// drives a budget-constrained SSD tier, so WarmShards races LRU
// eviction. Answers must stay byte-identical throughout and the final
// unpin must leave nothing pinned. Runs under the TSan CI leg.
TEST(ServeTierTest, EightThreadPinPrefetchEvictionStress) {
  ScratchDir scratch("pin_stress");
  GeneratedGraph gg = BarabasiAlbert(140, 3, 137);
  std::vector<uint8_t> bytes = CompressSharded(gg, 8);
  auto truth = LocalTruth(bytes, gg.graph.num_nodes());
  auto rows = DirectoryRows(bytes);
  uint64_t total = 0, largest = 0;
  for (const auto& row : rows) {
    total += row.length;
    largest = std::max(largest, row.length);
  }

  // --- Local leg: real mlock-backed pin/unpin + io_uring warms -----
  std::string path = scratch.path + "/stress.grc";
  ASSERT_TRUE(
      WriteFileBytes(path, api::WrapCodecPayload("sharded:grepair", bytes))
          .ok());
  auto opened = api::OpenCompressedFile(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto* sharded = dynamic_cast<shard::ShardedRep*>(opened.value().get());
  ASSERT_NE(sharded, nullptr);
  sharded->set_prefetch_threads(2);

  std::vector<size_t> all_shards(sharded->num_shards());
  for (size_t s = 0; s < all_shards.size(); ++s) all_shards[s] = s;

  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, t] {  // placement churn
        const uint64_t budgets[] = {0, total / 4, largest, total};
        for (int i = 0; i < 40; ++i) {
          std::vector<size_t> ranked = all_shards;
          std::rotate(ranked.begin(),
                      ranked.begin() + (i + t) % ranked.size(),
                      ranked.end());
          sharded->ApplyPlacement(ranked, budgets[i % 4]);
        }
      });
    }
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&] {  // histogram-style warming
        for (int i = 0; i < 20; ++i) {
          sharded->Prefetch(all_shards);
          sharded->WaitForPrefetch();
        }
      });
    }
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {  // readers
        for (uint64_t v = static_cast<uint64_t>(t); v < truth.size();
             v += 4) {
          auto r = sharded->OutNeighbors(v);
          if (!r.ok() || r.value() != truth[v]) ++failures;
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Deterministic end state: pin everything, then nothing.
  auto pinned = sharded->ApplyPlacement(all_shards, total);
  EXPECT_EQ(pinned.shards_pinned, CountDataShards(rows));
  EXPECT_EQ(pinned.pinned_bytes, total);
  auto released = sharded->ApplyPlacement({}, 0);
  EXPECT_EQ(released.shards_pinned, 0u);
  EXPECT_EQ(released.pinned_bytes, 0u);
  EXPECT_EQ(sharded->query_stats().shards_pinned, 0u);

  // --- Tiered leg: WarmShards racing LRU eviction ------------------
  serve::CorpusRegistry registry;
  ASSERT_TRUE(registry.AddBytes("g", SpanOf(bytes)).ok());
  auto server = serve::ShardServer::Start(std::move(registry));
  ASSERT_TRUE(server.ok());
  serve::OpenOptions options;
  options.ssd_cache_dir = scratch.path + "/cache";
  options.ssd_cache_bytes = largest + total / 4;  // forces evictions
  auto remote = serve::OpenRemoteContainer(server.value()->host_port(),
                                           options);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  auto* tiered_rep =
      dynamic_cast<shard::ShardedRep*>(remote.value().get());
  ASSERT_NE(tiered_rep, nullptr);
  tiered_rep->set_prefetch_threads(2);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&] {  // tier warms race evictions
        for (int i = 0; i < 10; ++i) {
          tiered_rep->Prefetch(all_shards);
          tiered_rep->WaitForPrefetch();
        }
      });
    }
    for (int t = 0; t < 6; ++t) {
      threads.emplace_back([&, t] {
        for (uint64_t v = static_cast<uint64_t>(t); v < truth.size();
             v += 6) {
          auto r = tiered_rep->OutNeighbors(v);
          if (!r.ok() || r.value() != truth[v]) ++failures;
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(DiskBytes(options.ssd_cache_dir), options.ssd_cache_bytes);
}

TEST(ServeTierTest, StatsVerbReportsPerCorpusHotShardHistograms) {
  GeneratedGraph web = BarabasiAlbert(60, 3, 109);
  GeneratedGraph cite = BarabasiAlbert(45, 3, 113);
  std::vector<uint8_t> web_bytes = CompressSharded(web, 3);
  std::vector<uint8_t> cite_bytes = CompressSharded(cite, 2);
  serve::CorpusRegistry registry;
  ASSERT_TRUE(registry.AddBytes("web", SpanOf(web_bytes)).ok());
  ASSERT_TRUE(registry.AddBytes("cite", SpanOf(cite_bytes)).ok());
  auto server = serve::ShardServer::Start(std::move(registry));
  ASSERT_TRUE(server.ok());

  // Touch only "web".
  auto rep = api::OpenRemote(server.value()->host_port() + "/web");
  ASSERT_TRUE(rep.ok());
  for (uint64_t v = 0; v < web.graph.num_nodes(); ++v) {
    ASSERT_TRUE(rep.value()->OutNeighbors(v).ok());
  }

  auto stats = serve::FetchServerStats(server.value()->host_port());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats.value().corpora.size(), 2u);
  const auto& web_stats = stats.value().corpora[0];
  const auto& cite_stats = stats.value().corpora[1];
  EXPECT_EQ(web_stats.name, "web");
  EXPECT_EQ(web_stats.inner_name, "grepair");
  EXPECT_EQ(web_stats.num_nodes, web.graph.num_nodes());
  EXPECT_GT(web_stats.requests, 0u);
  uint64_t web_hits = 0;
  for (uint64_t h : web_stats.shard_hits) web_hits += h;
  EXPECT_EQ(web_hits, web_stats.requests);
  EXPECT_EQ(cite_stats.name, "cite");
  EXPECT_EQ(cite_stats.requests, 0u);

  // The directory fetched over the admin path matches a local parse.
  std::string resolved;
  auto dir = serve::FetchCorpusDirectory(server.value()->host_port(), "web",
                                         /*io_timeout_ms=*/5000, &resolved);
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();
  EXPECT_EQ(resolved, "web");
  auto local_rows = DirectoryRows(web_bytes);
  ASSERT_EQ(dir.value().rows.size(), local_rows.size());
  for (size_t i = 0; i < local_rows.size(); ++i) {
    EXPECT_EQ(dir.value().rows[i].offset, local_rows[i].offset);
    EXPECT_EQ(dir.value().rows[i].length, local_rows[i].length);
    EXPECT_EQ(dir.value().rows[i].checksum, local_rows[i].checksum);
  }
}

// Regression: a corpus rebuilt in place keeps its sidecar path and
// often its shard count, so the size/epoch gates alone would let a
// stale sidecar's histogram warm (or pin) the wrong shards. The open
// must compare the persisted directory's checksum against what the
// server ships and drop the prior outright on mismatch.
TEST(ServeTierTest, StaleSidecarFailsClosedOnRebuiltCorpus) {
  ScratchDir scratch("stale");
  GeneratedGraph old_gg = BarabasiAlbert(80, 3, 127);
  GeneratedGraph new_gg = ErdosRenyi(80, 320, 137);
  std::vector<uint8_t> old_bytes = CompressSharded(old_gg, 4);
  std::vector<uint8_t> new_bytes = CompressSharded(new_gg, 4);
  // Same slot count (so the histogram-size gate passes), different
  // contents (so the checksums differ).
  auto old_rows = DirectoryRows(old_bytes);
  auto new_rows = DirectoryRows(new_bytes);
  ASSERT_EQ(old_rows.size(), new_rows.size());

  // Persist a sidecar for the OLD corpus with a rich histogram and an
  // epoch no fresh server snapshot can beat: absent the checksum gate,
  // this is exactly the prior the epoch comparison would prefer.
  serve::DirSidecar stale;
  {
    uint64_t dir_off = 0;
    auto region = shard::LocateV2DirectoryRegion(SpanOf(old_bytes),
                                                 &dir_off);
    ASSERT_TRUE(region.ok());
    stale.dir_off = dir_off;
    stale.raw_directory.assign(region.value().begin(),
                               region.value().end());
    stale.histogram.assign(old_rows.size(), 999);
    stale.histogram_epoch = ~0ull;
  }
  std::string cache_dir = scratch.path + "/cache";
  std::filesystem::create_directories(cache_dir);
  serve::SaveDirSidecar(serve::DirSidecarPath(cache_dir, ""), stale);

  // Serve the NEW corpus and open through the poisoned cache dir.
  serve::CorpusRegistry registry;
  ASSERT_TRUE(registry.AddBytes("g", SpanOf(new_bytes)).ok());
  auto server = serve::ShardServer::Start(std::move(registry));
  ASSERT_TRUE(server.ok());
  auto truth = LocalTruth(new_bytes, new_gg.graph.num_nodes());

  serve::OpenOptions options;
  options.ssd_cache_dir = cache_dir;
  options.warm_from_histogram = true;
  auto rep = serve::OpenRemoteContainer(server.value()->host_port(),
                                        options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  for (uint64_t v = 0; v < truth.size(); ++v) {
    auto r = rep.value()->OutNeighbors(v);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value(), truth[v]) << "node " << v;
  }

  // The re-persisted sidecar must describe the NEW corpus: its
  // directory bytes are the served ones and the stale histogram (999s
  // under a maximal epoch) was discarded, not carried forward.
  auto saved = serve::LoadDirSidecar(serve::DirSidecarPath(cache_dir, ""));
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  uint64_t dir_off = 0;
  auto new_region = shard::LocateV2DirectoryRegion(SpanOf(new_bytes),
                                                   &dir_off);
  ASSERT_TRUE(new_region.ok());
  EXPECT_EQ(saved.value().raw_directory,
            std::vector<uint8_t>(new_region.value().begin(),
                                 new_region.value().end()));
  EXPECT_NE(saved.value().histogram_epoch, ~0ull);
  for (uint64_t hits : saved.value().histogram) {
    EXPECT_NE(hits, 999u) << "stale histogram survived the rebuild";
  }
}

// Regression: dropping a corrupt cache file and refetching its shard
// must release the dead file's bytes from the LRU accounting. With a
// budget of exactly the corpus size, a leak double-counts every
// refetched shard and forces spurious evictions.
TEST(ServeTierTest, RefetchAfterCorruptionKeepsByteAccountingExact) {
  ScratchDir scratch("refetch");
  GeneratedGraph gg = BarabasiAlbert(90, 3, 139);
  std::vector<uint8_t> bytes = CompressSharded(gg, 4);
  auto truth = LocalTruth(bytes, gg.graph.num_nodes());
  uint64_t total = 0;
  for (const auto& row : DirectoryRows(bytes)) total += row.length;

  serve::CorpusRegistry registry;
  ASSERT_TRUE(registry.AddBytes("g", SpanOf(bytes)).ok());
  auto server = serve::ShardServer::Start(std::move(registry));
  ASSERT_TRUE(server.ok());

  serve::OpenOptions options;
  options.ssd_cache_dir = scratch.path + "/cache";
  options.ssd_cache_bytes = total;  // exactly enough for every shard

  // Warm every shard, then flip a byte in each cached file (size
  // unchanged, so accounting totals are comparable).
  {
    auto rep = serve::OpenRemoteContainer(server.value()->host_port(),
                                          options);
    ASSERT_TRUE(rep.ok());
    for (uint64_t v = 0; v < truth.size(); ++v) {
      ASSERT_TRUE(rep.value()->OutNeighbors(v).ok());
    }
    EXPECT_EQ(rep.value()->query_stats().tier_evictions, 0u);
  }
  size_t vandalized = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.ssd_cache_dir)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".shard") continue;
    auto cached = ReadFileBytes(entry.path().string());
    ASSERT_TRUE(cached.ok());
    std::vector<uint8_t> mutated = std::move(cached).ValueOrDie();
    mutated[mutated.size() / 2] ^= 0x10;
    ASSERT_TRUE(WriteFileBytes(entry.path().string(), mutated).ok());
    ++vandalized;
  }
  ASSERT_GT(vandalized, 0u);

  // Refetch everything. Correct accounting: each drop frees the dead
  // file's bytes before its replacement lands, so the budget that fit
  // the corpus once still fits it — zero evictions, disk at par.
  auto rep = serve::OpenRemoteContainer(server.value()->host_port(),
                                        options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  for (uint64_t v = 0; v < truth.size(); ++v) {
    auto r = rep.value()->OutNeighbors(v);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value(), truth[v]);
  }
  auto stats = rep.value()->query_stats();
  EXPECT_EQ(stats.tier_corrupt_drops, vandalized);
  EXPECT_EQ(stats.tier_evictions, 0u)
      << "refetch-after-corruption double-counted bytes";
  EXPECT_LE(DiskBytes(options.ssd_cache_dir), total);
}

}  // namespace
}  // namespace grepair
