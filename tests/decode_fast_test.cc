// Differential battery for the word-at-a-time decode engine.
//
// Contract under test: the fast clz-based Elias decoders and the
// word-based BitReader::ReadBits are BIT-IDENTICAL to the retained
// scalar oracles on every input — same values, same status codes and
// messages, same cursor position after both success and failure. The
// sweeps drive randomized streams, every truncation length, and every
// single-bit flip across the Peek64 refill boundary, so a divergence
// anywhere in the 64-bit window logic fails loudly here before it can
// corrupt a container decode. Also covers the Arena used for decoded
// shard neighborhoods.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/arena.h"
#include "src/util/bit_stream.h"
#include "src/util/elias.h"

namespace grepair {
namespace {

// One decoder step: everything the caller can observe.
struct Step {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  std::string message;
  uint64_t value = 0;
  size_t position = 0;

  bool operator==(const Step& o) const {
    return ok == o.ok && code == o.code && message == o.message &&
           value == o.value && position == o.position;
  }
};

using DecodeFn = Status (*)(BitReader*, uint64_t*);

// Runs `fn` over the whole stream, recording every observable step
// until the first error (inclusive).
std::vector<Step> Trace(DecodeFn fn, const std::vector<uint8_t>& bytes,
                        size_t bit_count) {
  BitReader reader(bytes.data(), bit_count);
  std::vector<Step> steps;
  // bit_count + 1 iterations bound the loop even if a decoder failed
  // to advance; the trace comparison would then expose it.
  for (size_t i = 0; i <= bit_count; ++i) {
    Step s;
    uint64_t v = 0;
    Status status = fn(&reader, &v);
    s.ok = status.ok();
    s.code = status.code();
    s.message = status.message();
    s.value = s.ok ? v : 0;
    s.position = reader.position();
    steps.push_back(s);
    if (!s.ok) break;
  }
  return steps;
}

void ExpectIdenticalTraces(DecodeFn fast, DecodeFn scalar,
                           const std::vector<uint8_t>& bytes,
                           size_t bit_count, const char* label) {
  auto f = Trace(fast, bytes, bit_count);
  auto s = Trace(scalar, bytes, bit_count);
  ASSERT_EQ(f.size(), s.size()) << label << ": step counts diverge";
  for (size_t i = 0; i < f.size(); ++i) {
    ASSERT_TRUE(f[i] == s[i])
        << label << ": step " << i << " diverges (fast: ok=" << f[i].ok
        << " code=" << static_cast<int>(f[i].code) << " value=" << f[i].value
        << " pos=" << f[i].position << "; scalar: ok=" << s[i].ok
        << " code=" << static_cast<int>(s[i].code) << " value=" << s[i].value
        << " pos=" << s[i].position << ")";
  }
}

// Both codes, full sweep: truncate to every bit length and flip every
// bit — each mutant must decode identically under fast and scalar.
void SweepStream(const std::vector<uint8_t>& bytes, size_t bit_count,
                 const char* label) {
  ExpectIdenticalTraces(&EliasGammaDecode, &EliasGammaDecodeScalar, bytes,
                        bit_count, label);
  ExpectIdenticalTraces(&EliasDeltaDecode, &EliasDeltaDecodeScalar, bytes,
                        bit_count, label);
  for (size_t cut = 0; cut <= bit_count; ++cut) {
    ExpectIdenticalTraces(&EliasGammaDecode, &EliasGammaDecodeScalar, bytes,
                          cut, label);
    ExpectIdenticalTraces(&EliasDeltaDecode, &EliasDeltaDecodeScalar, bytes,
                          cut, label);
  }
  for (size_t bit = 0; bit < bit_count; ++bit) {
    auto flipped = bytes;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (7 - bit % 8));
    ExpectIdenticalTraces(&EliasGammaDecode, &EliasGammaDecodeScalar,
                          flipped, bit_count, label);
    ExpectIdenticalTraces(&EliasDeltaDecode, &EliasDeltaDecodeScalar,
                          flipped, bit_count, label);
  }
}

std::vector<uint64_t> InterestingValues() {
  std::vector<uint64_t> vals = {1, 2, 3, 4, 7, 8, 15, 63, 64, 65, 255, 4096};
  for (int shift : {20, 31, 32, 40, 52, 62, 63}) {
    uint64_t p = 1ull << shift;
    vals.push_back(p - 1);
    vals.push_back(p);
    vals.push_back(p + 1);
  }
  vals.push_back(~0ull - 1);
  vals.push_back(~0ull);
  return vals;
}

TEST(DecodeFastTest, DeltaMatchesScalarOnInterestingValues) {
  // Each value alone, delta-coded: exercises the single-window fast
  // path, the general path (mantissas past ~52 bits) and the len==64
  // top-bit case.
  for (uint64_t v : InterestingValues()) {
    BitWriter w;
    EliasDeltaEncode(v, &w);
    SweepStream(w.bytes(), w.bit_size(),
                ("delta " + std::to_string(v)).c_str());
  }
}

TEST(DecodeFastTest, GammaMatchesScalarOnInterestingValues) {
  // Gamma codes reach 127 bits (values near 2^64), which never fit
  // one window: the straddling two-step path must stay identical too.
  for (uint64_t v : InterestingValues()) {
    BitWriter w;
    EliasGammaEncode(v, &w);
    SweepStream(w.bytes(), w.bit_size(),
                ("gamma " + std::to_string(v)).c_str());
  }
}

TEST(DecodeFastTest, RefillBoundarySweep) {
  // Slide a large code across every alignment of the 64-bit lookahead
  // window: pad with k one-bit gamma codes (value 1), then the code
  // under test straddles bit offset k.
  const uint64_t probes[] = {1, 0x5555, (1ull << 52) + 17,
                             (1ull << 63) + 123456789, ~0ull};
  for (uint64_t v : probes) {
    for (int pad = 0; pad < 130; ++pad) {
      BitWriter w;
      for (int i = 0; i < pad; ++i) EliasGammaEncode(1, &w);
      EliasDeltaEncode(v, &w);
      ExpectIdenticalTraces(&EliasDeltaDecode, &EliasDeltaDecodeScalar,
                            w.bytes(), w.bit_size(), "boundary delta");
      ExpectIdenticalTraces(&EliasGammaDecode, &EliasGammaDecodeScalar,
                            w.bytes(), w.bit_size(), "boundary gamma");
    }
  }
}

TEST(DecodeFastTest, RandomizedStreamsMatchScalar) {
  std::mt19937_64 rng(20160414);  // ICDE'16 vintage
  for (int iter = 0; iter < 60; ++iter) {
    BitWriter w;
    int codes = 1 + static_cast<int>(rng() % 40);
    for (int c = 0; c < codes; ++c) {
      // Magnitude spread: uniform in bit width, not in value.
      int width = 1 + static_cast<int>(rng() % 64);
      uint64_t v = (rng() & ((width == 64 ? 0 : (1ull << width)) - 1)) | 1u;
      EliasDeltaEncode(v, &w);
    }
    SweepStream(w.bytes(), w.bit_size(), "random stream");
  }
}

TEST(DecodeFastTest, RandomGarbageBytesMatchScalar) {
  // Pure noise: almost every decode errors somewhere; the two paths
  // must error the same way at the same cursor.
  std::mt19937_64 rng(0xbadc0de);
  for (int iter = 0; iter < 120; ++iter) {
    std::vector<uint8_t> bytes(1 + rng() % 24);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng());
    ExpectIdenticalTraces(&EliasGammaDecode, &EliasGammaDecodeScalar, bytes,
                          bytes.size() * 8, "garbage gamma");
    ExpectIdenticalTraces(&EliasDeltaDecode, &EliasDeltaDecodeScalar, bytes,
                          bytes.size() * 8, "garbage delta");
  }
}

TEST(DecodeFastTest, AllZeroAndAllOneStreams) {
  // All-zeros: gamma must report corruption once 64 zeros are ahead,
  // exhaustion on shorter tails — exactly like the oracle.
  for (size_t nbytes : {1u, 7u, 8u, 9u, 16u, 20u}) {
    std::vector<uint8_t> zeros(nbytes, 0x00);
    SweepStream(zeros, nbytes * 8, "all zeros");
    std::vector<uint8_t> ones(nbytes, 0xFF);
    SweepStream(ones, nbytes * 8, "all ones");
  }
}

TEST(DecodeFastTest, ReadBitsMatchesScalarOracle) {
  std::mt19937_64 rng(7);
  std::vector<uint8_t> bytes(41);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng());
  for (int trial = 0; trial < 200; ++trial) {
    BitReader fast(bytes.data(), bytes.size() * 8);
    BitReader scalar(bytes.data(), bytes.size() * 8);
    while (true) {
      int n = static_cast<int>(rng() % 65);
      uint64_t fv = 1, sv = 2;
      Status fs = fast.ReadBits(n, &fv);
      Status ss = scalar.ReadBitsScalar(n, &sv);
      ASSERT_EQ(fs.ok(), ss.ok());
      ASSERT_EQ(fast.position(), scalar.position());
      if (!fs.ok()) {
        ASSERT_EQ(fs.message(), ss.message());
        break;
      }
      ASSERT_EQ(fv, sv) << "n=" << n << " pos=" << fast.position();
    }
  }
}

TEST(DecodeFastTest, Peek64MasksBitsPastTheWindowEnd) {
  // A sub-window reader over a larger buffer: bits beyond bit_count
  // exist in memory but must read as zero (DecodeNodeMap hands out
  // such windows).
  std::vector<uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  for (size_t window = 1; window <= 80; ++window) {
    BitReader r(bytes.data(), window);
    uint64_t w = r.Peek64();
    if (window >= 64) {
      EXPECT_EQ(w, ~0ull) << "window " << window;
    } else {
      EXPECT_EQ(w, ~0ull << (64 - window)) << "window " << window;
    }
    // Mid-stream: consume some bits, the mask must track the cursor.
    BitReader r2(bytes.data(), window);
    size_t skip = window / 2;
    r2.Consume(skip);
    uint64_t w2 = r2.Peek64();
    size_t avail = window - skip;
    EXPECT_EQ(w2, avail >= 64 ? ~0ull : (avail == 0 ? 0 : ~0ull << (64 - avail)))
        << "window " << window;
  }
}

TEST(DecodeFastTest, BitsAvailableSurvivesAlignPastEnd) {
  // AlignToByte on a ragged tail can push the cursor past bit_count;
  // BitsAvailable/Peek64 must clamp instead of underflowing.
  std::vector<uint8_t> bytes = {0xA5};
  BitReader r(bytes.data(), 3);
  r.Consume(3);
  r.AlignToByte();  // cursor now at bit 8 > bit_count 3
  EXPECT_EQ(r.BitsAvailable(), 0u);
  EXPECT_EQ(r.Peek64(), 0u);
  uint64_t v = 0;
  EXPECT_FALSE(r.ReadBits(1, &v).ok());
}

TEST(DecodeFastTest, ScalarDispatchFlagRoutesFastEntryPoints) {
  // The golden-fixture differentials rely on this flag actually
  // switching the shared entry points over to the oracles.
  BitWriter w;
  EliasDeltaEncode(12345, &w);
  SetEliasDecodeScalarForTest(true);
  BitReader r(w.bytes());
  uint64_t v = 0;
  ASSERT_TRUE(EliasDeltaDecode(&r, &v).ok());
  SetEliasDecodeScalarForTest(false);
  EXPECT_EQ(v, 12345u);
}

TEST(ArenaTest, CarvesZeroedAlignedArraysFromOneBlock) {
  Arena arena(1 << 16);
  size_t reserved_before = arena.bytes_reserved();
  uint64_t* a = arena.AllocateArray<uint64_t>(100);
  uint32_t* b = arena.AllocateArray<uint32_t>(7);
  uint64_t* c = arena.AllocateArray<uint64_t>(900);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(uint64_t), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % alignof(uint64_t), 0u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(a[i], 0u);
  for (size_t i = 0; i < 900; ++i) EXPECT_EQ(c[i], 0u);
  // Everything fit the first block: no growth.
  EXPECT_EQ(arena.bytes_reserved(), reserved_before);
  EXPECT_GE(arena.bytes_allocated(), 100 * 8 + 7 * 4 + 900 * 8);
  // Writes land and stay disjoint.
  a[99] = 1;
  b[6] = 2;
  c[0] = 3;
  EXPECT_EQ(a[99], 1u);
  EXPECT_EQ(b[6], 2u);
  EXPECT_EQ(c[0], 3u);
}

TEST(ArenaTest, GrowsWhenABlockFills) {
  Arena arena(64);
  std::vector<uint64_t*> arrays;
  for (int i = 0; i < 50; ++i) {
    uint64_t* p = arena.AllocateArray<uint64_t>(33);
    for (size_t j = 0; j < 33; ++j) {
      EXPECT_EQ(p[j], 0u);
      p[j] = static_cast<uint64_t>(i);
    }
    arrays.push_back(p);
  }
  // Earlier arrays survive later growth.
  for (int i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 33; ++j) {
      EXPECT_EQ(arrays[i][j], static_cast<uint64_t>(i));
    }
  }
  EXPECT_GE(arena.bytes_allocated(), 50u * 33 * 8);
}

TEST(ArenaTest, ZeroLengthArraysAreValid) {
  Arena arena;
  EXPECT_NE(arena.AllocateArray<uint64_t>(0), nullptr);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
}

}  // namespace
}  // namespace grepair
