// Tests for SL-HR grammars: validation, size metrics, height, the
// paper's contribution formula (the Figure 6 example computes
// con(A) = 3), and rule compaction.

#include <gtest/gtest.h>

#include "src/grammar/grammar.h"

namespace grepair {
namespace {

Alphabet OneTerminal() {
  Alphabet a;
  a.Add("a", 2);
  return a;
}

// The grammar of Figure 6: rule A has a 3-node rhs with two terminal
// edges and rank 2; the start graph uses A four times over 9 nodes.
SlhrGrammar Figure6Grammar() {
  Hypergraph start(9);
  SlhrGrammar g(OneTerminal(), Hypergraph(9));
  Label a_nt = g.AddNonterminal(2, "A");
  Hypergraph rhs(3);
  rhs.AddSimpleEdge(0, 2, 0);
  rhs.AddSimpleEdge(2, 1, 0);
  rhs.SetExternal({0, 1});
  g.SetRule(a_nt, std::move(rhs));
  Hypergraph* s = g.mutable_start();
  s->AddEdge(a_nt, {0, 1});
  s->AddEdge(a_nt, {2, 3});
  s->AddEdge(a_nt, {4, 5});
  s->AddEdge(a_nt, {6, 7});
  return g;
}

TEST(GrammarTest, Figure6Contribution) {
  SlhrGrammar g = Figure6Grammar();
  ASSERT_TRUE(g.Validate().ok());
  Label a_nt = g.NonterminalLabel(0);
  EXPECT_EQ(g.CountReferences(a_nt), 4u);
  // |rhs| = 3 nodes + 2 edges = 5; |handle| = 2 + 1 = 3.
  EXPECT_EQ(g.rhs(a_nt).TotalSize(), 5u);
  EXPECT_EQ(SlhrGrammar::HandleSize(2), 3u);
  EXPECT_EQ(g.Contribution(a_nt, 4), 3);  // 4*(5-3) - 5
}

TEST(GrammarTest, SizesAndHeight) {
  SlhrGrammar g = Figure6Grammar();
  // |G| over rules = 5; |S| = 9 nodes + 4 edges = 13.
  EXPECT_EQ(g.RuleSize(), 5u);
  EXPECT_EQ(g.start().TotalSize(), 13u);
  EXPECT_EQ(g.TotalSize(), 18u);
  EXPECT_EQ(g.Height(), 1u);
}

TEST(GrammarTest, HandleSizeOfHyperedge) {
  // Rank-4 handle: 4 nodes + hyperedge of size 4.
  EXPECT_EQ(SlhrGrammar::HandleSize(4), 8u);
  EXPECT_EQ(SlhrGrammar::HandleSize(1), 2u);
}

TEST(GrammarTest, NestedHeight) {
  SlhrGrammar g(OneTerminal(), Hypergraph(2));
  Label a = g.AddNonterminal(2, "A");
  Label b = g.AddNonterminal(2, "B");
  Hypergraph rhs_a(3);
  rhs_a.AddSimpleEdge(0, 2, 0);
  rhs_a.AddSimpleEdge(2, 1, 0);
  rhs_a.SetExternal({0, 1});
  g.SetRule(a, std::move(rhs_a));
  Hypergraph rhs_b(3);
  rhs_b.AddEdge(a, {0, 2});
  rhs_b.AddEdge(a, {2, 1});
  rhs_b.SetExternal({0, 1});
  g.SetRule(b, std::move(rhs_b));
  g.mutable_start()->AddEdge(b, {0, 1});
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.Height(), 2u);
  EXPECT_EQ(g.CountReferences(a), 2u);
  auto refs = g.AllReferenceCounts();
  EXPECT_EQ(refs[0], 2u);
  EXPECT_EQ(refs[1], 1u);
}

TEST(GrammarTest, ValidateRejectsNonCanonicalRhs) {
  SlhrGrammar g(OneTerminal(), Hypergraph(2));
  Label a = g.AddNonterminal(2, "A");
  Hypergraph rhs(3);
  rhs.AddSimpleEdge(1, 2, 0);
  rhs.AddSimpleEdge(2, 0, 0);
  rhs.SetExternal({1, 0});  // externals are not 0,1 in order
  g.SetRule(a, std::move(rhs));
  g.mutable_start()->AddEdge(a, {0, 1});
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GrammarTest, ValidateRejectsForwardReference) {
  SlhrGrammar g(OneTerminal(), Hypergraph(2));
  Label a = g.AddNonterminal(2, "A");
  Label b = g.AddNonterminal(2, "B");
  // Rule A references B although B comes later: not bottom-up.
  Hypergraph rhs_a(2);
  rhs_a.AddEdge(b, {0, 1});
  rhs_a.SetExternal({0, 1});
  g.SetRule(a, std::move(rhs_a));
  Hypergraph rhs_b(2);
  rhs_b.AddSimpleEdge(0, 1, 0);
  rhs_b.SetExternal({0, 1});
  g.SetRule(b, std::move(rhs_b));
  g.mutable_start()->AddEdge(a, {0, 1});
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GrammarTest, ValidateRejectsRankMismatch) {
  SlhrGrammar g(OneTerminal(), Hypergraph(2));
  Label a = g.AddNonterminal(3, "A");  // rank 3
  Hypergraph rhs(3);
  rhs.AddSimpleEdge(0, 2, 0);
  rhs.SetExternal({0, 1});  // rank(rhs) = 2
  g.SetRule(a, std::move(rhs));
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GrammarTest, CompactRulesRelabels) {
  SlhrGrammar g(OneTerminal(), Hypergraph(4));
  Label a = g.AddNonterminal(2, "A");
  Label b = g.AddNonterminal(2, "B");
  Hypergraph rhs_a(3);
  rhs_a.AddSimpleEdge(0, 2, 0);
  rhs_a.AddSimpleEdge(2, 1, 0);
  rhs_a.SetExternal({0, 1});
  g.SetRule(a, std::move(rhs_a));
  Hypergraph rhs_b(2);
  rhs_b.AddSimpleEdge(0, 1, 0);
  rhs_b.SetExternal({0, 1});
  g.SetRule(b, std::move(rhs_b));
  g.mutable_start()->AddEdge(b, {0, 1});
  g.mutable_start()->AddEdge(b, {2, 3});

  // Rule A (index 0) is unreferenced: drop it; B becomes rule 0.
  g.CompactRules({1, 0});
  EXPECT_EQ(g.num_rules(), 1u);
  ASSERT_TRUE(g.Validate().ok());
  Label b_new = g.NonterminalLabel(0);
  EXPECT_EQ(g.CountReferences(b_new), 2u);
  EXPECT_EQ(g.rhs(b_new).num_edges(), 1u);
}

TEST(GrammarTest, StatsSummary) {
  SlhrGrammar g = Figure6Grammar();
  auto stats = ComputeGrammarStats(g);
  EXPECT_EQ(stats.num_rules, 1u);
  EXPECT_EQ(stats.height, 1u);
  EXPECT_EQ(stats.total_size, 18u);
  EXPECT_EQ(stats.max_nonterminal_rank, 2u);
  EXPECT_EQ(stats.start_nodes, 9u);
  EXPECT_EQ(stats.start_edges, 4u);
}

}  // namespace
}  // namespace grepair
