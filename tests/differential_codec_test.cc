// Differential property suite over the whole codec registry.
//
// Two properties, checked for every registered codec (the sharded
// meta-variants included) across every dataset generator at several
// sizes and seeds:
//
//   1. Round-trip: Decompress(Deserialize(Serialize(Compress(G)))) is
//      edge-set-identical to G (labeled sets for label-preserving
//      codecs, unlabeled (u, v) sets otherwise) with the node count
//      preserved.
//   2. Differential: sharded:<inner> reproduces exactly the graph
//      <inner> reproduces, for both partitioning strategies — the
//      replacement-strategy variants MR-RePair-style systems get
//      subtly wrong are exactly what this cross-check catches.
//
// Codecs that reject a dataset up front (e.g. unlabeled baselines on
// labeled graphs) must do so with kInvalidArgument, which the suite
// treats as a verified skip, not a pass.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "src/api/grepair_api.h"

namespace grepair {
namespace api {
namespace {

struct Dataset {
  std::string label;
  GeneratedGraph gg;
};

// Every generator family, two scales, two seeds (kept small enough
// that the full 12-codec sweep stays fast under TSan).
const std::vector<Dataset>& AllDatasets() {
  static const std::vector<Dataset>* datasets = [] {
    auto* out = new std::vector<Dataset>();
    for (uint32_t n : {48u, 160u}) {
      for (uint64_t seed : {1ull, 5ull}) {
        std::string tag =
            "_n" + std::to_string(n) + "_s" + std::to_string(seed);
        out->push_back({"er" + tag, ErdosRenyi(n, n * 3, seed)});
        out->push_back({"ba" + tag, BarabasiAlbert(n, 3, seed)});
        out->push_back({"coauth" + tag, CoAuthorship(n, n, seed)});
        out->push_back({"rdf_types" + tag, RdfTypes(n * 3, 12, seed)});
        out->push_back({"rdf_entities" + tag,
                        RdfEntities(n, 6, 12, seed)});  // labeled
        out->push_back(
            {"dblp" + tag, DblpVersions(3, n / 4, n / 8, seed, "dblp")});
      }
    }
    out->push_back(
        {"copies", DisjointCopies(CycleWithDiagonal(), 40, "copies")});
    return out;
  }();
  return *datasets;
}

using LabeledEdge = std::pair<Label, std::vector<NodeId>>;

// Sorted multisets, deliberately NOT deduplicated: the format
// supports parallel edges, so a codec that silently collapses
// multiplicity must fail these comparisons.
std::vector<LabeledEdge> LabeledEdgeSet(const Hypergraph& g) {
  std::vector<LabeledEdge> edges;
  for (const HEdge& e : g.edges()) edges.push_back({e.label, e.att});
  std::sort(edges.begin(), edges.end());
  return edges;
}

std::vector<std::pair<NodeId, NodeId>> UnlabeledEdgeSet(const Hypergraph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const HEdge& e : g.edges()) {
    if (e.att.size() == 2) edges.push_back({e.att[0], e.att[1]});
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

class DifferentialRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(DifferentialRoundTrip, EveryDatasetRoundTripsExactly) {
  auto codec = CodecRegistry::Create(GetParam());
  ASSERT_TRUE(codec.ok()) << codec.status().ToString();
  bool compressed_any = false;
  for (const Dataset& dataset : AllDatasets()) {
    SCOPED_TRACE(dataset.label);
    auto rep = codec.value()->Compress(dataset.gg.graph,
                                       dataset.gg.alphabet);
    if (!rep.ok()) {
      // A capability mismatch must be a clean, typed rejection.
      EXPECT_EQ(rep.status().code(), StatusCode::kInvalidArgument)
          << rep.status().ToString();
      continue;
    }
    compressed_any = true;
    EXPECT_EQ(rep.value()->num_nodes(), dataset.gg.graph.num_nodes());

    auto bytes = rep.value()->Serialize();
    ASSERT_FALSE(bytes.empty());
    auto back = codec.value()->Deserialize(bytes);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    auto decompressed = back.value()->Decompress();
    ASSERT_TRUE(decompressed.ok()) << decompressed.status().ToString();

    EXPECT_EQ(decompressed.value().num_nodes(), dataset.gg.graph.num_nodes());
    if (codec.value()->capabilities() & kSupportsLabels) {
      EXPECT_EQ(LabeledEdgeSet(decompressed.value()),
                LabeledEdgeSet(dataset.gg.graph));
    } else {
      EXPECT_EQ(UnlabeledEdgeSet(decompressed.value()),
                UnlabeledEdgeSet(dataset.gg.graph));
    }
  }
  EXPECT_TRUE(compressed_any)
      << GetParam() << " rejected every dataset in the suite";
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, DifferentialRoundTrip,
                         ::testing::ValuesIn(CodecRegistry::Names()),
                         [](const auto& suite_info) {
                           std::string name = suite_info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           std::replace(name.begin(), name.end(), ':', '_');
                           return name;
                         });

class ShardedAgreesWithInner : public ::testing::TestWithParam<std::string> {
};

TEST_P(ShardedAgreesWithInner, SameGraphBothStrategies) {
  auto inner = CodecRegistry::Create(GetParam()).ValueOrDie();
  auto sharded = CodecRegistry::Create("sharded:" + GetParam());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  for (const Dataset& dataset : AllDatasets()) {
    SCOPED_TRACE(dataset.label);
    auto inner_rep =
        inner->Compress(dataset.gg.graph, dataset.gg.alphabet);
    for (const char* strategy : {"edge-range", "bfs"}) {
      CodecOptions options;
      options.Set("shards", "3");
      options.Set("threads", "2");
      options.Set("strategy", strategy);
      auto sharded_rep = sharded.value()->Compress(
          dataset.gg.graph, dataset.gg.alphabet, options);
      // Sharding must not change which inputs a codec accepts.
      ASSERT_EQ(inner_rep.ok(), sharded_rep.ok())
          << strategy << ": inner=" << inner_rep.status().ToString()
          << " sharded=" << sharded_rep.status().ToString();
      if (!inner_rep.ok()) continue;

      auto inner_graph = inner_rep.value()->Decompress();
      auto sharded_graph = sharded_rep.value()->Decompress();
      ASSERT_TRUE(inner_graph.ok()) << inner_graph.status().ToString();
      ASSERT_TRUE(sharded_graph.ok()) << sharded_graph.status().ToString();
      EXPECT_EQ(sharded_graph.value().num_nodes(),
                inner_graph.value().num_nodes());
      if (inner->capabilities() & kSupportsLabels) {
        EXPECT_EQ(LabeledEdgeSet(sharded_graph.value()),
                  LabeledEdgeSet(inner_graph.value()))
            << strategy;
      } else {
        EXPECT_EQ(UnlabeledEdgeSet(sharded_graph.value()),
                  UnlabeledEdgeSet(inner_graph.value()))
            << strategy;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BaseCodecs, ShardedAgreesWithInner,
                         ::testing::ValuesIn(CodecRegistry::BaseNames()),
                         [](const auto& suite_info) {
                           std::string name = suite_info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// Every codec must reject out-of-range node ids the same way:
// kInvalidArgument when it answers the query kind at all (CheckNodeId
// contract), kUnimplemented otherwise — never silence, never a crash,
// and never a divergent code per backend. Swept over ids at and past
// the boundary, including UINT64_MAX (which would truncate to a valid
// id if any codec narrowed before checking).
class AdversarialIdSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(AdversarialIdSweep, OutOfRangeIdsRejectUniformly) {
  GeneratedGraph gg = BarabasiAlbert(60, 3, 11);
  auto codec = CodecRegistry::Create(GetParam()).ValueOrDie();
  CodecOptions options;
  if (GetParam().rfind("sharded:", 0) == 0) {
    options.Set("shards", "3");
  }
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  uint64_t n = rep.value()->num_nodes();
  ASSERT_EQ(n, gg.graph.num_nodes());

  bool neighbors = codec->capabilities() & kNeighborQueries;
  bool reach = codec->capabilities() & kReachabilityQueries;
  auto expect_code = [&](const Status& status, bool supported,
                         const std::string& what) {
    EXPECT_EQ(status.code(), supported ? StatusCode::kInvalidArgument
                                       : StatusCode::kUnimplemented)
        << what << ": " << status.ToString();
  };

  for (uint64_t bad : {n, n + 1, std::numeric_limits<uint64_t>::max()}) {
    SCOPED_TRACE("id=" + std::to_string(bad));
    expect_code(rep.value()->OutNeighbors(bad).status(), neighbors, "out");
    expect_code(rep.value()->InNeighbors(bad).status(), neighbors, "in");
    expect_code(rep.value()->Reachable(0, bad).status(), reach,
                "reach-to");
    expect_code(rep.value()->Reachable(bad, 0).status(), reach,
                "reach-from");
    // A bad id poisons the whole batch, valid neighbors included.
    expect_code(rep.value()->OutNeighborsBatch({0, bad}).status(),
                neighbors, "batch");
    expect_code(rep.value()->ReachableBatch({{0, 0}, {bad, 0}}).status(),
                reach, "reach-batch");
    // Even from == to must validate before the trivial-true answer.
    expect_code(rep.value()->Reachable(bad, bad).status(), reach,
                "reach-self");
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, AdversarialIdSweep,
                         ::testing::ValuesIn(CodecRegistry::Names()),
                         [](const auto& suite_info) {
                           std::string name = suite_info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           std::replace(name.begin(), name.end(), ':', '_');
                           return name;
                         });

// Sharded neighbor queries must agree with the ground-truth adjacency
// of the input graph, across shard boundaries.
TEST(ShardedQueryDifferentialTest, NeighborsMatchGroundTruth) {
  GeneratedGraph gg = BarabasiAlbert(220, 3, 29);
  for (const char* backend : {"sharded:grepair", "sharded:k2"}) {
    auto codec = CodecRegistry::Create(backend).ValueOrDie();
    CodecOptions options;
    options.Set("shards", "4");
    options.Set("strategy", "bfs");
    auto rep = codec->Compress(gg.graph, gg.alphabet, options);
    ASSERT_TRUE(rep.ok()) << backend << ": " << rep.status().ToString();
    for (NodeId v = 0; v < gg.graph.num_nodes(); v += 7) {
      std::vector<uint64_t> expected_out, expected_in;
      for (const HEdge& e : gg.graph.edges()) {
        if (e.att[0] == v) expected_out.push_back(e.att[1]);
        if (e.att[1] == v) expected_in.push_back(e.att[0]);
      }
      for (auto* vec : {&expected_out, &expected_in}) {
        std::sort(vec->begin(), vec->end());
        vec->erase(std::unique(vec->begin(), vec->end()), vec->end());
      }
      auto out = rep.value()->OutNeighbors(v);
      auto in = rep.value()->InNeighbors(v);
      ASSERT_TRUE(out.ok()) << backend;
      ASSERT_TRUE(in.ok()) << backend;
      EXPECT_EQ(out.value(), expected_out) << backend << " node " << v;
      EXPECT_EQ(in.value(), expected_in) << backend << " node " << v;
    }
  }
}

}  // namespace
}  // namespace api
}  // namespace grepair
