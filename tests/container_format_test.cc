// Golden-file format-stability tests for the container formats: the
// backend-tagged frame ("GRPCODEC", src/api/container.h) and the two
// sharded multi-shard containers ("GRSHARD1" eager, "GRSHARD2"
// footer-directory/lazy; src/shard/sharded_codec.h).
//
// The golden byte arrays below are checked-in fixtures. If one of
// these tests fails after an intentional format change, do NOT update
// the bytes in place: bump the container magic/version and add a new
// fixture, so old files stay readable (or fail loudly with a version
// error instead of misparsing). The corruption sweeps additionally
// pin the untrusted-input contract: truncated or bit-flipped
// containers yield a clean error Status (or a still-consistent rep),
// never a crash — the CI sanitizer matrix runs these sweeps under
// ASan/UBSan and TSan.

#include <gtest/gtest.h>

#include <cstring>

#include "src/api/grepair_api.h"
#include "src/util/byte_io.h"
#include "src/util/elias.h"

namespace grepair {
namespace {

// The fixture graph: a directed 6-cycle over one rank-2 label.
Hypergraph FixtureGraph() {
  Hypergraph g(6);
  for (NodeId v = 0; v < 6; ++v) g.AddSimpleEdge(v, (v + 1) % 6, 0);
  return g;
}

Alphabet FixtureAlphabet() {
  Alphabet alphabet;
  alphabet.Add("e", 2);
  return alphabet;
}

// sharded:k2, shards=2, threads=1, edge-range — regenerate by
// compressing FixtureGraph() and hex-dumping Serialize() (see
// tests/container_format_test.cc history for a one-liner), but only
// together with a magic bump.
const uint8_t kGoldenShardedContainer[] = {
    // "GRSHARD1" magic (version byte last)
    0x47, 0x52, 0x53, 0x48, 0x41, 0x52, 0x44, 0x31,
    // inner codec name: len 2, "k2"
    0x02, 0x6B, 0x32,
    // u64 global node count = 6
    0x06, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    // u32 shard count = 3 (2 data shards + cut shard)
    0x03, 0x00, 0x00, 0x00,
    // shard 0: node map {0,1,2,3}, 8-byte k2 payload
    0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0xF0,
    0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x6A, 0x51, 0xAD, 0x63, 0x49, 0x75, 0x09, 0x00,
    // shard 1: node map {0,3,4,5}, 8-byte k2 payload
    0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0xAE,
    0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x6A, 0x51, 0xAD, 0x63, 0x49, 0x5C, 0x89, 0x00,
    // cut shard: empty node map, empty payload
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
};

// WrapCodecPayload("grepair", {DE AD BE EF}).
const uint8_t kGoldenTaggedContainer[] = {
    0x47, 0x52, 0x50, 0x43, 0x4F, 0x44, 0x45, 0x43,  // "GRPCODEC"
    0x07, 0x67, 0x72, 0x65, 0x70, 0x61, 0x69, 0x72,  // len 7, "grepair"
    0xDE, 0xAD, 0xBE, 0xEF,                          // payload
};

std::vector<uint8_t> GoldenSharded() {
  return std::vector<uint8_t>(
      kGoldenShardedContainer,
      kGoldenShardedContainer + sizeof(kGoldenShardedContainer));
}

// SerializeV2() of the same sharded:k2 fixture: payload blobs after
// the magic, footer directory (name, counts, per-shard offset/length/
// checksum/node map), 24-byte trailer (directory offset/length/
// checksum). Pinned like the v1 bytes: change only with a magic bump.
const uint8_t kGoldenShardedV2Container[] = {
    0x47, 0x52, 0x53, 0x48, 0x41, 0x52, 0x44, 0x32, 0x6A, 0x51, 0xAD, 0x63,
    0x49, 0x75, 0x09, 0x00, 0x6A, 0x51, 0xAD, 0x63, 0x49, 0x5C, 0x89, 0x00,
    0x02, 0x6B, 0x32, 0x06, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03,
    0x00, 0x00, 0x00, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x08,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xAD, 0x00, 0x37, 0xC1, 0x5B,
    0x39, 0x5F, 0x88, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01,
    0x00, 0x00, 0x00, 0xF0, 0x10, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x68, 0x24, 0x52, 0x8F,
    0xFB, 0xD9, 0x2F, 0x81, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x01, 0x00, 0x00, 0x00, 0xAE, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x18, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x7D, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x57, 0x5D, 0xAF,
    0xCD, 0x7E, 0x0B, 0xF0, 0x2F,
};

std::vector<uint8_t> GoldenShardedV2() {
  return std::vector<uint8_t>(
      kGoldenShardedV2Container,
      kGoldenShardedV2Container + sizeof(kGoldenShardedV2Container));
}

TEST(TaggedContainerTest, GoldenBytesAreStable) {
  auto bytes = api::WrapCodecPayload("grepair", {0xDE, 0xAD, 0xBE, 0xEF});
  ASSERT_EQ(bytes.size(), sizeof(kGoldenTaggedContainer));
  EXPECT_EQ(0, std::memcmp(bytes.data(), kGoldenTaggedContainer,
                           bytes.size()))
      << "tagged container layout drifted; bump the magic instead of "
         "changing the frame";

  std::string name;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(api::UnwrapCodecPayload(bytes, &name, &payload).ok());
  EXPECT_EQ(name, "grepair");
  EXPECT_EQ(payload, std::vector<uint8_t>({0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(TaggedContainerTest, NonContainerAndTruncatedInputsFailCleanly) {
  std::string name;
  std::vector<uint8_t> payload;
  // A raw .grg-style file (no magic) is InvalidArgument, so callers
  // can fall through to the legacy format.
  std::vector<uint8_t> raw = {0x01, 0x02, 0x03};
  EXPECT_FALSE(api::IsCodecContainer(raw));
  auto status = api::UnwrapCodecPayload(raw, &name, &payload);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  // Truncations inside the frame are Corruption.
  auto good = api::WrapCodecPayload("grepair", {0xDE, 0xAD});
  for (size_t len = 8; len < 16; ++len) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + len);
    auto cut_status = api::UnwrapCodecPayload(cut, &name, &payload);
    EXPECT_FALSE(cut_status.ok()) << "length " << len;
    if (api::IsCodecContainer(cut)) {
      EXPECT_EQ(cut_status.code(), StatusCode::kCorruption)
          << "length " << len;
    }
  }
}

TEST(ShardedContainerTest, GoldenBytesAreStable) {
  auto codec = api::CodecRegistry::Create("sharded:k2").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "2");
  options.Set("threads", "1");
  auto rep = codec->Compress(FixtureGraph(), FixtureAlphabet(), options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto bytes = rep.value()->Serialize();
  ASSERT_EQ(bytes.size(), sizeof(kGoldenShardedContainer))
      << "sharded container size drifted";
  EXPECT_EQ(0, std::memcmp(bytes.data(), kGoldenShardedContainer,
                           bytes.size()))
      << "sharded container layout drifted; bump the 'GRSHARD1' magic "
         "instead of changing version 1 in place";
}

TEST(ShardedContainerTest, GoldenBytesDeserializeToTheFixture) {
  auto codec = api::CodecRegistry::Create("sharded:k2").ValueOrDie();
  auto rep = codec->Deserialize(GoldenSharded());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep.value()->num_nodes(), 6u);
  auto graph = rep.value()->Decompress();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_TRUE(graph.value().EqualUpToEdgeOrder(FixtureGraph()));

  // Re-serialization is byte-stable.
  EXPECT_EQ(rep.value()->Serialize(), GoldenSharded());
}

TEST(ShardedContainerTest, VersionDriftFailsLoudly) {
  auto bytes = GoldenSharded();
  bytes[7] = '3';  // future container version ('2' is now real)
  auto rep = shard::ShardedRep::Deserialize(bytes);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kCorruption);
  EXPECT_NE(rep.status().message().find("version"), std::string::npos)
      << rep.status().ToString();
}

TEST(ShardedV2ContainerTest, GoldenBytesAreStable) {
  auto codec = api::CodecRegistry::Create("sharded:k2").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "2");
  options.Set("threads", "1");
  auto rep = codec->Compress(FixtureGraph(), FixtureAlphabet(), options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto* sharded = dynamic_cast<shard::ShardedRep*>(rep.value().get());
  ASSERT_NE(sharded, nullptr);
  auto bytes = sharded->SerializeV2();
  ASSERT_EQ(bytes.size(), sizeof(kGoldenShardedV2Container))
      << "sharded v2 container size drifted";
  EXPECT_EQ(0, std::memcmp(bytes.data(), kGoldenShardedV2Container,
                           bytes.size()))
      << "sharded v2 container layout drifted; bump the 'GRSHARD2' magic "
         "instead of changing version 2 in place";
}

TEST(ShardedV2ContainerTest, GoldenBytesDeserializeToTheFixture) {
  auto codec = api::CodecRegistry::Create("sharded:k2").ValueOrDie();
  auto rep = codec->Deserialize(GoldenShardedV2());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep.value()->num_nodes(), 6u);
  auto graph = rep.value()->Decompress();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_TRUE(graph.value().EqualUpToEdgeOrder(FixtureGraph()));

  // Serialize() of a v2-opened rep emits the byte-stable v1 form, and
  // SerializeV2 round-trips byte-identically.
  auto* sharded = dynamic_cast<shard::ShardedRep*>(rep.value().get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->Serialize(), GoldenSharded());
  EXPECT_EQ(sharded->SerializeV2(), GoldenShardedV2());
}

TEST(ShardedV2ContainerTest, InspectReadsTheDirectoryWithoutDecoding) {
  auto info = shard::ShardedRep::Inspect(
      ByteSpan(kGoldenShardedV2Container,
               sizeof(kGoldenShardedV2Container)));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().version, 2);
  EXPECT_EQ(info.value().inner_name, "k2");
  EXPECT_EQ(info.value().num_nodes, 6u);
  ASSERT_EQ(info.value().shards.size(), 3u);
  EXPECT_EQ(info.value().shards[0].offset, 8u);
  EXPECT_EQ(info.value().shards[0].length, 8u);
  EXPECT_EQ(info.value().shards[0].node_count, 4u);
  EXPECT_EQ(info.value().shards[1].offset, 16u);
  EXPECT_EQ(info.value().shards[1].length, 8u);
  EXPECT_EQ(info.value().shards[2].length, 0u);  // empty cut shard

  // The v1 container inspects too (a header scan, no inner decode).
  auto v1 = shard::ShardedRep::Inspect(
      ByteSpan(kGoldenShardedContainer, sizeof(kGoldenShardedContainer)));
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(v1.value().version, 1);
  EXPECT_EQ(v1.value().inner_name, "k2");
  ASSERT_EQ(v1.value().shards.size(), 3u);
  EXPECT_EQ(v1.value().shards[0].length, 8u);
}

TEST(ShardedV2ContainerTest, EveryTruncationFailsCleanly) {
  auto good = GoldenShardedV2();
  for (size_t len = 0; len < good.size(); ++len) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + len);
    auto rep = shard::ShardedRep::Deserialize(cut);
    EXPECT_FALSE(rep.ok()) << "truncation to " << len
                           << " bytes parsed successfully";
  }
  // Trailing garbage shifts the trailer out of alignment: an error,
  // not silently ignored.
  auto extended = good;
  extended.push_back(0x00);
  EXPECT_FALSE(shard::ShardedRep::Deserialize(extended).ok());
}

TEST(ShardedV2ContainerTest, EveryBitFlipFailsClosed) {
  // Stronger than the v1 sweep: v2 carries payload and directory
  // checksums, so EVERY single-byte corruption must surface as a
  // clean error — at open time for directory/trailer flips, at fault
  // time (first decompression/query) for payload flips. Never a
  // silently different answer.
  GeneratedGraph gg = BarabasiAlbert(60, 2, 31);
  for (const char* strategy : {"edge-range", "bfs"}) {
    auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
    api::CodecOptions options;
    options.Set("shards", "3");
    options.Set("strategy", strategy);
    auto rep = codec->Compress(gg.graph, gg.alphabet, options);
    ASSERT_TRUE(rep.ok());
    auto* sharded = dynamic_cast<shard::ShardedRep*>(rep.value().get());
    ASSERT_NE(sharded, nullptr);
    auto bytes = sharded->SerializeV2();
    for (size_t off = 8; off < bytes.size(); ++off) {
      auto bad = bytes;
      bad[off] ^= 0xFF;
      auto back = codec->Deserialize(bad);
      if (!back.ok()) continue;  // caught at open
      auto graph = back.value()->Decompress();
      EXPECT_FALSE(graph.ok())
          << strategy << ": flip at offset " << off
          << " survived open AND decompression";
      auto neighbors = back.value()->OutNeighbors(0);  // must not crash
      (void)neighbors;
    }
  }
}

TEST(ShardedContainerTest, WrongInnerCodecIsRejected) {
  // A sharded:k2 container fed to sharded:grepair must be refused,
  // not misparsed.
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  auto rep = codec->Deserialize(GoldenSharded());
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedContainerTest, EveryTruncationFailsCleanly) {
  auto good = GoldenSharded();
  for (size_t len = 0; len < good.size(); ++len) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + len);
    auto rep = shard::ShardedRep::Deserialize(cut);
    EXPECT_FALSE(rep.ok()) << "truncation to " << len
                           << " bytes parsed successfully";
  }
  // Trailing garbage is also an error, not silently ignored.
  auto extended = good;
  extended.push_back(0x00);
  EXPECT_FALSE(shard::ShardedRep::Deserialize(extended).ok());
}

TEST(ShardedContainerTest, HugeClaimedNodeMapRejectedWithoutAllocating) {
  // Regression: a crafted container claiming num_nodes=2^32-1 AND a
  // shard node-map count of 2^32-1 passed the count<=num_nodes check
  // and sized a ~16 GiB allocation from it (bad_alloc). Single-bit
  // flips cannot produce this state (two fields must be large
  // together), so the flip sweep missed it; counts must be bounded by
  // the remaining input size instead.
  std::vector<uint8_t> bytes(shard::kShardContainerMagic,
                             shard::kShardContainerMagic + 8);
  bytes.push_back(2);  // inner name "k2"
  bytes.push_back('k');
  bytes.push_back('2');
  PutU64LE(0xFFFFFFFFull, &bytes);  // huge but "valid" num_nodes
  PutU32LE(1, &bytes);              // one shard
  PutU64LE(0xFFFFFFFFull, &bytes);  // huge node-map count
  auto rep = shard::ShardedRep::Deserialize(bytes);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kCorruption);
}

TEST(ShardedContainerTest, NestedShardedInnerNameRejected) {
  // Regression: the inner-name field is untrusted; "sharded:<x>"
  // resolved through the registry and recursed back into this parser,
  // so a deeply nested crafted file was a stack overflow instead of a
  // Status. Compression never nests containers, so parsing rejects
  // them outright.
  std::vector<uint8_t> bytes(shard::kShardContainerMagic,
                             shard::kShardContainerMagic + 8);
  const std::string inner = "sharded:k2";
  bytes.push_back(static_cast<uint8_t>(inner.size()));
  bytes.insert(bytes.end(), inner.begin(), inner.end());
  PutU64LE(6, &bytes);  // num_nodes
  PutU32LE(1, &bytes);  // one shard
  PutU64LE(0, &bytes);  // empty node map
  PutU64LE(0, &bytes);  // empty payload
  auto rep = shard::ShardedRep::Deserialize(bytes);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kCorruption);
  EXPECT_NE(rep.status().message().find("nested"), std::string::npos);
}

TEST(ShardedContainerTest, WrappingNodeMapGapRejected) {
  // Regression: the node-map decoder computed `prev + gap` in uint64,
  // so a crafted gap near 2^64 wrapped the sum back into [1,
  // num_nodes] and smuggled in an UNSORTED map ([2, 1]) that binary
  // search cannot query — Decompress showed edges that OutNeighbors
  // denied. Gaps must be range-checked before the addition.
  std::vector<uint8_t> bytes(shard::kShardContainerMagic,
                             shard::kShardContainerMagic + 8);
  bytes.push_back(2);  // inner name "k2"
  bytes.push_back('k');
  bytes.push_back('2');
  PutU64LE(6, &bytes);  // num_nodes
  PutU32LE(1, &bytes);  // one shard
  PutU64LE(2, &bytes);  // node-map count 2
  BitWriter w;
  EliasDeltaEncode(3, &w);              // first id: shifted = 3
  EliasDeltaEncode(~0ull, &w);          // gap 2^64-1: wraps to shifted = 2
  w.AlignToByte();
  auto map_bits = w.TakeBytes();
  bytes.insert(bytes.end(), map_bits.begin(), map_bits.end());
  PutU64LE(0, &bytes);  // empty payload
  auto rep = shard::ShardedRep::Deserialize(bytes);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kCorruption);
}

TEST(ShardedContainerTest, EveryBitFlipFailsCleanlyOrStaysConsistent) {
  // Flip each byte of a larger container (both strategies); the
  // result must be a clean Status or a rep whose queries and
  // decompression do not crash. ASan/UBSan verify the "no UB" half.
  GeneratedGraph gg = BarabasiAlbert(60, 2, 31);
  for (const char* strategy : {"edge-range", "bfs"}) {
    auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
    api::CodecOptions options;
    options.Set("shards", "3");
    options.Set("strategy", strategy);
    auto rep = codec->Compress(gg.graph, gg.alphabet, options);
    ASSERT_TRUE(rep.ok());
    auto bytes = rep.value()->Serialize();
    for (size_t off = 0; off < bytes.size(); ++off) {
      auto bad = bytes;
      bad[off] ^= 0xFF;
      auto back = codec->Deserialize(bad);
      if (!back.ok()) continue;
      auto graph = back.value()->Decompress();  // must not crash
      (void)graph;
      auto neighbors = back.value()->OutNeighbors(0);  // must not crash
      (void)neighbors;
    }
  }
}

// RAII guard so a failing differential cannot leave the scalar switch
// on for later tests in the binary.
struct ScopedScalarDecode {
  ScopedScalarDecode() { SetEliasDecodeScalarForTest(true); }
  ~ScopedScalarDecode() { SetEliasDecodeScalarForTest(false); }
};

TEST(GoldenDifferentialTest, FixturesDecodeIdenticallyUnderScalarOracle) {
  // Whole-parser differential over every golden container fixture:
  // decode with the word-at-a-time Elias engine (default), then again
  // with every decode routed through the scalar oracles, and require
  // the same graph and byte-identical re-serialization. This catches a
  // fast/scalar divergence anywhere in a real container parse, not
  // just in a synthetic stream.
  struct Fixture {
    const char* codec;
    std::vector<uint8_t> bytes;
  };
  const std::vector<Fixture> fixtures = {
      {"sharded:k2", GoldenSharded()},
      {"sharded:k2", GoldenShardedV2()},
  };
  for (const auto& fixture : fixtures) {
    auto codec = api::CodecRegistry::Create(fixture.codec).ValueOrDie();

    auto fast_rep = codec->Deserialize(fixture.bytes);
    ASSERT_TRUE(fast_rep.ok()) << fast_rep.status().ToString();
    auto fast_graph = fast_rep.value()->Decompress();
    ASSERT_TRUE(fast_graph.ok()) << fast_graph.status().ToString();
    auto fast_bytes = fast_rep.value()->Serialize();

    std::vector<uint8_t> scalar_bytes;
    {
      ScopedScalarDecode scalar_mode;
      auto scalar_rep = codec->Deserialize(fixture.bytes);
      ASSERT_TRUE(scalar_rep.ok()) << scalar_rep.status().ToString();
      auto scalar_graph = scalar_rep.value()->Decompress();
      ASSERT_TRUE(scalar_graph.ok()) << scalar_graph.status().ToString();
      EXPECT_TRUE(fast_graph.value().EqualUpToEdgeOrder(scalar_graph.value()));
      scalar_bytes = scalar_rep.value()->Serialize();
    }
    EXPECT_EQ(fast_bytes, scalar_bytes)
        << fixture.codec << ": fast and scalar decodes re-serialize "
        << "differently";
  }
}

TEST(GoldenDifferentialTest, CorruptFixturesFailIdenticallyUnderOracle) {
  // The differential contract covers errors too: every truncation of
  // a golden fixture must produce the same ok/error outcome under the
  // fast and scalar decode paths.
  auto good = GoldenShardedV2();
  auto codec = api::CodecRegistry::Create("sharded:k2").ValueOrDie();
  for (size_t len = 0; len < good.size(); ++len) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + len);
    auto fast = codec->Deserialize(cut);
    bool fast_decompress_ok = false;
    if (fast.ok()) fast_decompress_ok = fast.value()->Decompress().ok();
    ScopedScalarDecode scalar_mode;
    auto scalar = codec->Deserialize(cut);
    bool scalar_decompress_ok = false;
    if (scalar.ok()) scalar_decompress_ok = scalar.value()->Decompress().ok();
    EXPECT_EQ(fast.ok(), scalar.ok()) << "truncation to " << len;
    EXPECT_EQ(fast_decompress_ok, scalar_decompress_ok)
        << "truncation to " << len;
  }
}

}  // namespace
}  // namespace grepair
