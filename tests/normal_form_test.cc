// Tests for the Chomsky normal form transformation (Section V /
// Proposition 5): every rhs ends with at most two edges and val(G) is
// preserved (isomorphism via WL hash, exact node/edge counts).

#include <gtest/gtest.h>

#include "src/datasets/generators.h"
#include "src/grammar/normal_form.h"
#include "src/graph/wl_hash.h"
#include "src/grepair/compressor.h"

namespace grepair {
namespace {

void CheckNormalized(const SlhrGrammar& grammar,
                     const NormalFormOptions& options) {
  for (uint32_t j = 0; j < grammar.num_rules(); ++j) {
    EXPECT_LE(grammar.rhs_by_index(j).num_edges(), options.max_edges)
        << "rule " << j;
  }
  if (options.max_edges_start >= 2) {
    EXPECT_LE(grammar.start().num_edges(), options.max_edges_start);
  }
}

TEST(NormalFormTest, SplitsWideRule) {
  // One rule with a 6-edge chain rhs.
  Alphabet alpha;
  alpha.Add("a", 2);
  SlhrGrammar g(alpha, Hypergraph(2));
  Label nt = g.AddNonterminal(2, "A");
  Hypergraph rhs(7);
  for (uint32_t i = 0; i < 6; ++i) {
    rhs.AddSimpleEdge(i == 0 ? 0 : i + 1, i == 5 ? 1 : i + 2, 0);
  }
  rhs.SetExternal({0, 1});
  g.SetRule(nt, std::move(rhs));
  g.mutable_start()->AddEdge(nt, {0, 1});
  g.mutable_start()->AddEdge(nt, {1, 0});
  ASSERT_TRUE(g.Validate().ok());
  auto before = Derive(g);
  ASSERT_TRUE(before.ok());

  auto stats = NormalizeGrammar(&g);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(g.Validate().ok()) << g.Validate().ToString();
  CheckNormalized(g, NormalFormOptions());
  EXPECT_GT(stats.value().rules_after, stats.value().rules_before);

  auto after = Derive(g);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().num_nodes(), before.value().num_nodes());
  EXPECT_EQ(after.value().num_edges(), before.value().num_edges());
  EXPECT_EQ(WlHash(after.value()), WlHash(before.value()));
}

TEST(NormalFormTest, AlreadyNormalIsUntouched) {
  Alphabet alpha;
  alpha.Add("a", 2);
  SlhrGrammar g(alpha, Hypergraph(2));
  Label nt = g.AddNonterminal(2, "A");
  Hypergraph rhs(3);
  rhs.AddSimpleEdge(0, 2, 0);
  rhs.AddSimpleEdge(2, 1, 0);
  rhs.SetExternal({0, 1});
  g.SetRule(nt, std::move(rhs));
  g.mutable_start()->AddEdge(nt, {0, 1});
  auto stats = NormalizeGrammar(&g);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().rules_after, stats.value().rules_before);
}

TEST(NormalFormTest, RejectsTooSmallLimit) {
  Alphabet alpha;
  alpha.Add("a", 2);
  SlhrGrammar g(alpha, Hypergraph(1));
  NormalFormOptions options;
  options.max_edges = 1;
  EXPECT_FALSE(NormalizeGrammar(&g, options).ok());
}

class NormalFormSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(NormalFormSweep, PreservesValOnCompressedGrammars) {
  std::string which = GetParam();
  GeneratedGraph gg;
  if (which == "coauth") gg = CoAuthorship(150, 220, 71);
  if (which == "rdf") gg = RdfTypes(500, 10, 72);
  if (which == "games") gg = GamePositions(40, 8, 3, 5, 73);
  if (which == "copies") {
    gg = DisjointCopies(CycleWithDiagonal(), 64, "copies");
  }
  auto result = Compress(gg.graph, gg.alphabet, {});
  ASSERT_TRUE(result.ok());
  SlhrGrammar grammar = std::move(result.value().grammar);
  auto before = Derive(grammar);
  ASSERT_TRUE(before.ok());

  auto stats = NormalizeGrammar(&grammar);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(grammar.Validate().ok()) << grammar.Validate().ToString();
  CheckNormalized(grammar, NormalFormOptions());

  auto after = Derive(grammar);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().num_nodes(), before.value().num_nodes());
  EXPECT_EQ(after.value().num_edges(), before.value().num_edges());
  EXPECT_EQ(WlHash(after.value()), WlHash(before.value())) << which;
}

INSTANTIATE_TEST_SUITE_P(Graphs, NormalFormSweep,
                         ::testing::Values("coauth", "rdf", "games",
                                           "copies"));

TEST(NormalFormTest, StartGraphSplitting) {
  GeneratedGraph gg = DisjointCopies(CycleWithDiagonal(), 32, "copies");
  auto result = Compress(gg.graph, gg.alphabet, {});
  ASSERT_TRUE(result.ok());
  SlhrGrammar grammar = std::move(result.value().grammar);
  auto before = Derive(grammar);

  NormalFormOptions options;
  options.max_edges_start = 2;
  auto stats = NormalizeGrammar(&grammar, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(grammar.Validate().ok());
  EXPECT_LE(grammar.start().num_edges(), 2u);
  auto after = Derive(grammar);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(WlHash(after.value()), WlHash(before.value()));
}

TEST(NormalFormTest, WiderLimit) {
  GeneratedGraph gg = CoAuthorship(120, 200, 74);
  auto result = Compress(gg.graph, gg.alphabet, {});
  SlhrGrammar grammar = std::move(result.value().grammar);
  auto before = Derive(grammar);
  NormalFormOptions options;
  options.max_edges = 4;
  auto stats = NormalizeGrammar(&grammar, options);
  ASSERT_TRUE(stats.ok());
  CheckNormalized(grammar, options);
  auto after = Derive(grammar);
  EXPECT_EQ(WlHash(after.value()), WlHash(before.value()));
}

}  // namespace
}  // namespace grepair
