// Unit tests for the DeltaOverlay edit snapshot and the GRSHARD3
// delta-container codec (src/shard/delta_overlay.h).
//
// The overlay's merge rule — out(u) = (base \ killed) u adds — and its
// edit-ordering semantics (a delete erases pending adds of its pair, a
// later add resurrects exactly one edge) are pinned here on small
// hand-checked cases; tests/dynamic_corpus_test.cc proves the same
// rules differentially against full recompression. The container codec
// tests exercise the fail-closed contract: every mutated byte must
// surface as kCorruption, never as a silently different corpus.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/shard/delta_overlay.h"
#include "src/util/hashing.h"

namespace grepair {
namespace shard {
namespace {

using Edits = std::vector<EdgeEdit>;

std::shared_ptr<const DeltaOverlay> MustApply(const DeltaOverlay* base,
                                              const Edits& edits) {
  auto result = DeltaOverlay::Apply(base, edits);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

TEST(DeltaOverlayTest, EmptyOverlayIsInert) {
  auto overlay = MustApply(nullptr, {});
  EXPECT_TRUE(overlay->empty());
  EXPECT_EQ(overlay->ByteSize(), 0u);
  EXPECT_EQ(overlay->min_num_nodes(), 0u);
  EXPECT_FALSE(overlay->TouchesOut(0));
  EXPECT_FALSE(overlay->IsKilled(1, 2));
  std::vector<uint64_t> base = {3, 5, 9};
  EXPECT_EQ(overlay->MergeOut(1, base), base);
  EXPECT_EQ(overlay->MergeIn(1, base), base);
}

TEST(DeltaOverlayTest, AddsUnionIntoBaseSorted) {
  auto overlay = MustApply(
      nullptr, {EdgeEdit::Add(1, 7), EdgeEdit::Add(1, 2), EdgeEdit::Add(4, 0)});
  EXPECT_EQ(overlay->add_count(), 3u);
  EXPECT_EQ(overlay->min_num_nodes(), 8u);  // node 7 is the max id
  EXPECT_TRUE(overlay->TouchesOut(1));
  EXPECT_TRUE(overlay->TouchesIn(2));
  EXPECT_TRUE(overlay->TouchesIn(0));
  EXPECT_FALSE(overlay->TouchesOut(2));
  EXPECT_EQ(overlay->MergeOut(1, {5}), (std::vector<uint64_t>{2, 5, 7}));
  EXPECT_EQ(overlay->MergeIn(0, {}), (std::vector<uint64_t>{4}));
  // Untouched node: base passes through untouched.
  EXPECT_EQ(overlay->MergeOut(9, {1, 2}), (std::vector<uint64_t>{1, 2}));
}

TEST(DeltaOverlayTest, MergeIsIdempotentOnAlreadyMergedBase) {
  auto overlay =
      MustApply(nullptr, {EdgeEdit::Add(1, 2), EdgeEdit::Delete(1, 9)});
  // A base answer that already reflects the edits (2 present, 9 gone)
  // must merge to itself — this is what makes the query-time re-merge
  // over a folded shard harmless.
  std::vector<uint64_t> merged = {2, 5};
  EXPECT_EQ(overlay->MergeOut(1, merged), merged);
}

TEST(DeltaOverlayTest, KillRemovesAllLabelsOfPair) {
  auto overlay = MustApply(nullptr, {EdgeEdit::Delete(3, 4)});
  EXPECT_TRUE(overlay->IsKilled(3, 4));
  EXPECT_FALSE(overlay->IsKilled(4, 3));
  EXPECT_EQ(overlay->MergeOut(3, {1, 4, 8}), (std::vector<uint64_t>{1, 8}));
  EXPECT_EQ(overlay->MergeIn(4, {3}), (std::vector<uint64_t>{}));
}

TEST(DeltaOverlayTest, DeleteErasesPendingAddsOfPair) {
  auto overlay = MustApply(nullptr, {EdgeEdit::Add(1, 2, 5),
                                     EdgeEdit::Add(1, 2, 6),
                                     EdgeEdit::Delete(1, 2)});
  // Both pending adds die with the pair; the kill itself stays (base
  // copies of 1->2 must not survive either).
  EXPECT_EQ(overlay->add_count(), 0u);
  EXPECT_EQ(overlay->kill_count(), 1u);
  EXPECT_EQ(overlay->MergeOut(1, {2, 9}), (std::vector<uint64_t>{9}));
}

TEST(DeltaOverlayTest, AddAfterDeleteResurrectsOneEdge) {
  auto overlay = MustApply(nullptr, {EdgeEdit::Delete(1, 2),
                                     EdgeEdit::Add(1, 2, 7)});
  // The kill still applies to base edges, but the union re-adds the
  // pair: net out-neighbor answer contains 2 again.
  EXPECT_EQ(overlay->add_count(), 1u);
  EXPECT_EQ(overlay->kill_count(), 1u);
  EXPECT_EQ(overlay->MergeOut(1, {2}), (std::vector<uint64_t>{2}));
  EXPECT_EQ(overlay->MergeOut(1, {}), (std::vector<uint64_t>{2}));
}

TEST(DeltaOverlayTest, DuplicateAddsCoalesce) {
  auto overlay = MustApply(nullptr, {EdgeEdit::Add(1, 2, 3),
                                     EdgeEdit::Add(1, 2, 3)});
  EXPECT_EQ(overlay->add_count(), 1u);
}

TEST(DeltaOverlayTest, SelfLoopAddRejected) {
  auto result = DeltaOverlay::Apply(nullptr, {EdgeEdit::Add(5, 5)});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaOverlayTest, ApplyStacksOnBaseOverlay) {
  auto first = MustApply(nullptr, {EdgeEdit::Add(1, 2), EdgeEdit::Add(3, 4)});
  auto second = MustApply(first.get(), {EdgeEdit::Delete(1, 2),
                                        EdgeEdit::Add(5, 6)});
  EXPECT_EQ(second->add_count(), 2u);  // (3,4) and (5,6); (1,2) erased
  EXPECT_EQ(second->kill_count(), 1u);
  EXPECT_EQ(second->MergeOut(1, {}), (std::vector<uint64_t>{}));
  EXPECT_EQ(second->MergeOut(3, {}), (std::vector<uint64_t>{4}));
  // The base snapshot is immutable: still answers its own state.
  EXPECT_EQ(first->MergeOut(1, {}), (std::vector<uint64_t>{2}));
}

TEST(DeltaOverlayTest, FromRunsRejectsUnsortedAndDuplicates) {
  // Wire data funnels through FromRuns; disorder is kCorruption.
  auto unsorted = DeltaOverlay::FromRuns(
      {DeltaEdge{2, 1, 0}, DeltaEdge{1, 2, 0}}, {});
  EXPECT_EQ(unsorted.status().code(), StatusCode::kCorruption);
  auto dup_kills = DeltaOverlay::FromRuns(
      {}, {DeltaPair{1, 2}, DeltaPair{1, 2}});
  EXPECT_EQ(dup_kills.status().code(), StatusCode::kCorruption);
  auto ok = DeltaOverlay::FromRuns(
      {DeltaEdge{1, 2, 0}, DeltaEdge{1, 2, 1}}, {DeltaPair{4, 0}});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value()->add_count(), 2u);
}

DeltaContainer SampleDelta() {
  DeltaContainer delta;
  delta.base_hash = 0x1234567890abcdefull;
  delta.base_size = 4096;
  delta.base_dir_checksum = 0xfeedface;
  delta.num_nodes = 1000;
  DeltaContainer::ChangedShard shard;
  shard.index = 2;
  shard.payload = {1, 2, 3, 4, 5};
  shard.checksum = HashBytes(shard.payload.data(), shard.payload.size());
  delta.shards.push_back(std::move(shard));
  delta.adds = {DeltaEdge{1, 2, 0}, DeltaEdge{7, 3, 9}};
  delta.kills = {DeltaPair{0, 4}};
  return delta;
}

TEST(DeltaContainerTest, EncodeDecodeRoundTrip) {
  DeltaContainer delta = SampleDelta();
  auto bytes = EncodeDeltaContainer(delta);
  ASSERT_TRUE(IsDeltaContainer(SpanOf(bytes)));
  auto back = DecodeDeltaContainer(SpanOf(bytes), "test");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const DeltaContainer& d = back.value();
  EXPECT_EQ(d.base_hash, delta.base_hash);
  EXPECT_EQ(d.base_size, delta.base_size);
  EXPECT_EQ(d.base_dir_checksum, delta.base_dir_checksum);
  EXPECT_EQ(d.num_nodes, delta.num_nodes);
  ASSERT_EQ(d.shards.size(), 1u);
  EXPECT_EQ(d.shards[0].index, 2u);
  EXPECT_EQ(d.shards[0].payload, delta.shards[0].payload);
  EXPECT_EQ(d.adds, delta.adds);
  EXPECT_EQ(d.kills, delta.kills);
}

TEST(DeltaContainerTest, NotADeltaIsInvalidArgument) {
  std::vector<uint8_t> bytes = {'G', 'R', 'P', 'C', 'O', 'D', 'E', 'C', 0};
  auto result = DecodeDeltaContainer(SpanOf(bytes), "test");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaContainerTest, EveryFlippedByteFailsClosed) {
  auto bytes = EncodeDeltaContainer(SampleDelta());
  // Flip each byte after the magic in turn: the decode must never
  // succeed (trailing checksum, shard checksum, or run sortedness
  // catches it), and must fail with kCorruption, not a crash.
  for (size_t i = 8; i < bytes.size(); ++i) {
    std::vector<uint8_t> mutated = bytes;
    mutated[i] ^= 0x5a;
    auto result = DecodeDeltaContainer(SpanOf(mutated), "flip");
    EXPECT_FALSE(result.ok()) << "byte " << i << " flip decoded";
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kCorruption)
          << "byte " << i << ": " << result.status().ToString();
    }
  }
}

TEST(DeltaContainerTest, EveryTruncationFailsClosed) {
  auto bytes = EncodeDeltaContainer(SampleDelta());
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto result = DecodeDeltaContainer(ByteSpan{bytes.data(), len}, "trunc");
    EXPECT_FALSE(result.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(DeltaContainerTest, DescendingShardIndicesRejected) {
  DeltaContainer delta = SampleDelta();
  DeltaContainer::ChangedShard earlier;
  earlier.index = 1;  // after index 2 — violates strict ascent
  earlier.payload = {9};
  earlier.checksum = HashBytes(earlier.payload.data(), 1);
  delta.shards.push_back(std::move(earlier));
  auto bytes = EncodeDeltaContainer(delta);
  auto result = DecodeDeltaContainer(SpanOf(bytes), "order");
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace shard
}  // namespace grepair
