// Round-trip tests for the psi' node-mapping serialization.

#include <gtest/gtest.h>

#include "src/datasets/generators.h"
#include "src/encoding/grammar_coder.h"
#include "src/grepair/compressor.h"

namespace grepair {
namespace {

void CheckMappingRoundTrip(const GeneratedGraph& gg) {
  CompressOptions options;
  options.track_node_mapping = true;
  auto result = Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(result.ok());
  const SlhrGrammar& grammar = result.value().grammar;

  auto bytes = EncodeNodeMapping(grammar, result.value().mapping);
  auto decoded = DecodeNodeMapping(grammar, bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  // The decoded mapping must reconstruct the exact original graph.
  auto original = DeriveOriginal(grammar, decoded.value());
  ASSERT_TRUE(original.ok());
  EXPECT_TRUE(original.value().EqualUpToEdgeOrder(gg.graph)) << gg.name;

  // And agree entry-for-entry with the in-memory mapping.
  auto a = FlattenOrigins(grammar, result.value().mapping);
  auto b = FlattenOrigins(grammar, decoded.value());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(MappingCodecTest, RoundTripsAcrossWorkloads) {
  CheckMappingRoundTrip(CoAuthorship(150, 220, 91));
  CheckMappingRoundTrip(RdfTypes(400, 8, 92));
  CheckMappingRoundTrip(
      DisjointCopies(CycleWithDiagonal(), 64, "copies64"));
  CheckMappingRoundTrip(GamePositions(30, 8, 3, 4, 93));
}

TEST(MappingCodecTest, RejectsWrongGrammar) {
  CompressOptions options;
  options.track_node_mapping = true;
  GeneratedGraph a = RdfTypes(200, 6, 94);
  GeneratedGraph b = RdfTypes(300, 6, 95);
  auto ra = Compress(a.graph, a.alphabet, options);
  auto rb = Compress(b.graph, b.alphabet, options);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  auto bytes = EncodeNodeMapping(ra.value().grammar, ra.value().mapping);
  // Decoding against the wrong grammar must fail cleanly.
  auto decoded = DecodeNodeMapping(rb.value().grammar, bytes);
  EXPECT_FALSE(decoded.ok());
}

TEST(MappingCodecTest, RejectsTruncatedBytes) {
  CompressOptions options;
  options.track_node_mapping = true;
  GeneratedGraph gg = CoAuthorship(100, 150, 96);
  auto result = Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(result.ok());
  auto bytes = EncodeNodeMapping(result.value().grammar,
                                 result.value().mapping);
  bytes.resize(bytes.size() / 2);
  auto decoded = DecodeNodeMapping(result.value().grammar, bytes);
  if (decoded.ok()) {
    // If the truncation landed on a decodable prefix, the permutation
    // check must still reject it downstream.
    auto original = DeriveOriginal(result.value().grammar, decoded.value());
    EXPECT_FALSE(original.ok() &&
                 original.value().EqualUpToEdgeOrder(gg.graph));
  }
}

TEST(MappingCodecTest, MappingSizeIsModest) {
  // The out-of-band mapping costs O(|V| log |V|) bits; check the
  // constant is sane (under ~4 bytes/node here).
  GeneratedGraph gg = RdfTypes(4000, 10, 97);
  CompressOptions options;
  options.track_node_mapping = true;
  auto result = Compress(gg.graph, gg.alphabet, options);
  auto bytes = EncodeNodeMapping(result.value().grammar,
                                 result.value().mapping);
  EXPECT_LT(bytes.size(), gg.graph.num_nodes() * 4u);
}

}  // namespace
}  // namespace grepair
