// Partitioner invariants: every input edge lands in exactly one
// shard, node maps are sorted/compact/consistent with the local
// subgraphs, the BFS strategy balances regions and isolates cut
// edges, and partitioning is deterministic.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/datasets/generators.h"
#include "src/shard/partitioner.h"

namespace grepair {
namespace shard {
namespace {

// Canonical multiset of global (label, att) edges in `partition`.
std::vector<std::pair<Label, std::vector<NodeId>>> GlobalEdges(
    const GraphPartition& partition) {
  std::vector<std::pair<Label, std::vector<NodeId>>> edges;
  for (const Shard& shard : partition.shards) {
    for (const HEdge& e : shard.graph.edges()) {
      std::vector<NodeId> att;
      for (NodeId v : e.att) att.push_back(shard.nodes[v]);
      edges.push_back({e.label, std::move(att)});
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

std::vector<std::pair<Label, std::vector<NodeId>>> CanonicalEdges(
    const Hypergraph& g) {
  std::vector<std::pair<Label, std::vector<NodeId>>> edges;
  for (const HEdge& e : g.edges()) edges.push_back({e.label, e.att});
  std::sort(edges.begin(), edges.end());
  return edges;
}

void CheckShardConsistency(const GraphPartition& partition,
                           uint32_t num_nodes) {
  EXPECT_EQ(partition.num_nodes, num_nodes);
  for (const Shard& shard : partition.shards) {
    EXPECT_TRUE(std::is_sorted(shard.nodes.begin(), shard.nodes.end()));
    EXPECT_EQ(std::adjacent_find(shard.nodes.begin(), shard.nodes.end()),
              shard.nodes.end());
    EXPECT_EQ(shard.graph.num_nodes(), shard.nodes.size());
    for (NodeId v : shard.nodes) EXPECT_LT(v, num_nodes);
    for (const HEdge& e : shard.graph.edges()) {
      for (NodeId v : e.att) ASSERT_LT(v, shard.nodes.size());
    }
  }
}

TEST(PartitionerTest, EdgeRangePreservesEveryEdgeWithEmptyCut) {
  GeneratedGraph gg = BarabasiAlbert(400, 3, 7);
  PartitionOptions options;
  options.num_shards = 5;
  options.strategy = PartitionStrategy::kEdgeRange;
  auto partition = PartitionGraph(gg.graph, options);
  ASSERT_TRUE(partition.ok()) << partition.status().ToString();

  ASSERT_EQ(partition.value().shards.size(), 6u);  // 5 data + cut
  EXPECT_EQ(partition.value().num_cut_edges, 0u);
  EXPECT_EQ(partition.value().cut_shard().graph.num_edges(), 0u);
  CheckShardConsistency(partition.value(), gg.graph.num_nodes());
  EXPECT_EQ(GlobalEdges(partition.value()), CanonicalEdges(gg.graph));

  // Edge ranges are balanced to within one edge.
  uint32_t m = gg.graph.num_edges();
  for (int k = 0; k < 5; ++k) {
    uint32_t edges = partition.value().shards[k].graph.num_edges();
    EXPECT_GE(edges, m / 5);
    EXPECT_LE(edges, m / 5 + 1);
  }
}

TEST(PartitionerTest, GreedyBfsOwnsEveryNodeOnceAndIsolatesCutEdges) {
  GeneratedGraph gg = CoAuthorship(300, 300, 11);
  PartitionOptions options;
  options.num_shards = 4;
  options.strategy = PartitionStrategy::kGreedyBfs;
  auto partition = PartitionGraph(gg.graph, options);
  ASSERT_TRUE(partition.ok()) << partition.status().ToString();

  ASSERT_EQ(partition.value().shards.size(), 5u);
  CheckShardConsistency(partition.value(), gg.graph.num_nodes());
  EXPECT_EQ(GlobalEdges(partition.value()), CanonicalEdges(gg.graph));
  EXPECT_EQ(partition.value().cut_shard().graph.num_edges(),
            partition.value().num_cut_edges);

  // Every node is owned by exactly one data shard, and all data
  // regions except the last respect the capacity cap.
  uint32_t cap = (gg.graph.num_nodes() + 3) / 4;
  std::map<NodeId, int> owner_count;
  for (int k = 0; k < 4; ++k) {
    const Shard& shard = partition.value().shards[k];
    EXPECT_LE(shard.nodes.size(), static_cast<size_t>(cap) + 1) << k;
    for (NodeId v : shard.nodes) owner_count[v]++;
  }
  ASSERT_EQ(owner_count.size(), gg.graph.num_nodes());
  for (const auto& [node, count] : owner_count) {
    EXPECT_EQ(count, 1) << "node " << node << " owned by " << count
                        << " shards";
  }

  // An internal edge's endpoints all live in its shard's node map, by
  // construction; a cut edge's endpoints span at least two owners.
  const Shard& cut = partition.value().cut_shard();
  for (const HEdge& e : cut.graph.edges()) {
    std::vector<NodeId> global;
    for (NodeId v : e.att) global.push_back(cut.nodes[v]);
    int first_owner = -1;
    bool spans = false;
    for (NodeId v : global) {
      for (int k = 0; k < 4; ++k) {
        const auto& nodes = partition.value().shards[k].nodes;
        if (std::binary_search(nodes.begin(), nodes.end(), v)) {
          if (first_owner == -1) first_owner = k;
          if (k != first_owner) spans = true;
        }
      }
    }
    EXPECT_TRUE(spans);
  }
}

TEST(PartitionerTest, HyperedgesFollowTheirAttachments) {
  Alphabet alphabet;
  alphabet.Add("e", 2);
  alphabet.Add("H", 3);
  Hypergraph g(9);
  for (NodeId v = 0; v + 1 < 9; ++v) g.AddSimpleEdge(v, v + 1, 0);
  g.AddEdge(1, {0, 4, 8});  // spans the whole graph
  PartitionOptions options;
  options.num_shards = 3;
  options.strategy = PartitionStrategy::kGreedyBfs;
  auto partition = PartitionGraph(g, options);
  ASSERT_TRUE(partition.ok());
  CheckShardConsistency(partition.value(), 9);
  EXPECT_EQ(GlobalEdges(partition.value()), CanonicalEdges(g));
  // The rank-3 edge cannot be internal to any 3-node region.
  bool found = false;
  for (const HEdge& e : partition.value().cut_shard().graph.edges()) {
    if (e.rank() == 3) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PartitionerTest, SingleShardAndOvershardedGraphs) {
  GeneratedGraph gg = ErdosRenyi(20, 30, 3);
  for (auto strategy :
       {PartitionStrategy::kEdgeRange, PartitionStrategy::kGreedyBfs}) {
    PartitionOptions options;
    options.strategy = strategy;
    options.num_shards = 1;
    auto one = PartitionGraph(gg.graph, options);
    ASSERT_TRUE(one.ok());
    EXPECT_EQ(GlobalEdges(one.value()), CanonicalEdges(gg.graph));

    options.num_shards = 64;  // more shards than edges
    auto many = PartitionGraph(gg.graph, options);
    ASSERT_TRUE(many.ok());
    ASSERT_EQ(many.value().shards.size(), 65u);
    EXPECT_EQ(GlobalEdges(many.value()), CanonicalEdges(gg.graph));
  }
}

TEST(PartitionerTest, RejectsBadInputs) {
  GeneratedGraph gg = ErdosRenyi(20, 30, 3);
  PartitionOptions options;
  options.num_shards = 0;
  EXPECT_FALSE(PartitionGraph(gg.graph, options).ok());
  options.num_shards = (1 << 20) + 1;
  EXPECT_FALSE(PartitionGraph(gg.graph, options).ok());

  Hypergraph with_ext(4);
  with_ext.AddSimpleEdge(0, 1, 0);
  with_ext.SetExternal({0, 1});
  options.num_shards = 2;
  auto bad = PartitionGraph(with_ext, options);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(PartitionerTest, Deterministic) {
  GeneratedGraph gg = BarabasiAlbert(200, 4, 5);
  for (auto strategy :
       {PartitionStrategy::kEdgeRange, PartitionStrategy::kGreedyBfs}) {
    PartitionOptions options;
    options.num_shards = 6;
    options.strategy = strategy;
    auto a = PartitionGraph(gg.graph, options);
    auto b = PartitionGraph(gg.graph, options);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().shards.size(), b.value().shards.size());
    for (size_t i = 0; i < a.value().shards.size(); ++i) {
      EXPECT_EQ(a.value().shards[i].nodes, b.value().shards[i].nodes);
      EXPECT_TRUE(a.value().shards[i].graph == b.value().shards[i].graph);
    }
  }
}

TEST(PartitionerTest, StrategyNamesRoundTrip) {
  PartitionStrategy s;
  ASSERT_TRUE(ParsePartitionStrategy("edge-range", &s));
  EXPECT_EQ(s, PartitionStrategy::kEdgeRange);
  ASSERT_TRUE(ParsePartitionStrategy("bfs", &s));
  EXPECT_EQ(s, PartitionStrategy::kGreedyBfs);
  EXPECT_FALSE(ParsePartitionStrategy("metis", &s));
  EXPECT_STREQ(PartitionStrategyName(PartitionStrategy::kEdgeRange),
               "edge-range");
  EXPECT_STREQ(PartitionStrategyName(PartitionStrategy::kGreedyBfs), "bfs");
}

}  // namespace
}  // namespace shard
}  // namespace grepair
