// Tests for the text I/O formats (native hypergraph format and
// SNAP-style edge lists).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/graph/graph_io.h"

namespace grepair {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(GraphIoTest, NativeRoundTrip) {
  Alphabet alpha;
  alpha.Add("a", 2);
  alpha.Add("H", 3);
  Hypergraph g(5);
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(4, 2, 0);
  g.AddEdge(1, {1, 3, 4});

  std::string path = TempPath("native_roundtrip.graph");
  ASSERT_TRUE(SaveGraphText(g, alpha, path).ok());
  auto loaded = LoadGraphText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().graph == g);
  EXPECT_EQ(loaded.value().alphabet.size(), alpha.size());
  EXPECT_EQ(loaded.value().alphabet.rank(1), 3);
  std::remove(path.c_str());
}

TEST(GraphIoTest, ParseRejectsBadHeader) {
  std::istringstream in("not-a-graph 1 2 3");
  EXPECT_FALSE(ParseGraphText(in).ok());
}

TEST(GraphIoTest, ParseRejectsBadLabel) {
  std::istringstream in("grepair-graph 3 1 1\n2\n9 0 1\n");
  EXPECT_FALSE(ParseGraphText(in).ok());
}

TEST(GraphIoTest, ParseRejectsOutOfRangeNode) {
  std::istringstream in("grepair-graph 3 1 1\n2\n0 0 7\n");
  EXPECT_FALSE(ParseGraphText(in).ok());
}

TEST(GraphIoTest, ParseRejectsSelfLoop) {
  // Restriction (1): repeated attachment must fail validation.
  std::istringstream in("grepair-graph 3 1 1\n2\n0 1 1\n");
  EXPECT_FALSE(ParseGraphText(in).ok());
}

TEST(GraphIoTest, SnapEdgeListCompactsIds) {
  std::string path = TempPath("snap.txt");
  {
    std::ofstream out(path);
    out << "# comment line\n";
    out << "100 200\n200 300\n100 100\n100 200\n";
  }
  auto loaded = LoadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  // Ids compacted to 0..2; self-loop and duplicate dropped.
  EXPECT_EQ(loaded.value().graph.num_nodes(), 3u);
  EXPECT_EQ(loaded.value().graph.num_edges(), 2u);
  EXPECT_TRUE(loaded.value().graph.IsSimple());
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileReportsNotFound) {
  auto loaded = LoadGraphText("/nonexistent/path/graph.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace grepair
