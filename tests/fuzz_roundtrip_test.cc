// Randomized end-to-end property tests: for a battery of random graphs
// and option combinations, the full pipeline (compress -> prune ->
// encode -> decode -> derive) must reproduce the input exactly, and
// grammar queries must agree with brute force.
//
// These run the same invariants as compressor_test/encoding_test but
// over a wider randomized space (seeds x densities x label counts),
// exercising odd corner cases: dense multigraph-like label stacks,
// disconnected fragments, isolated nodes, single-hub stars.

#include <gtest/gtest.h>

#include "src/encoding/grammar_coder.h"
#include "src/graph/graph_algos.h"
#include "src/graph/wl_hash.h"
#include "src/grepair/compressor.h"
#include "src/query/reachability.h"
#include "src/query/speedup.h"
#include "src/util/rng.h"

namespace grepair {
namespace {

struct FuzzParam {
  uint64_t seed;
  uint32_t nodes;
  uint32_t edges;
  uint32_t labels;
};

Hypergraph RandomGraph(const FuzzParam& p, Alphabet* alphabet) {
  Rng rng(p.seed);
  alphabet->AddSimpleLabels(static_cast<int>(p.labels));
  std::vector<std::array<uint32_t, 3>> triples;
  for (uint32_t i = 0; i < p.edges; ++i) {
    uint32_t u, v;
    double mode = rng.UniformDouble();
    if (mode < 0.3) {
      // Star-ish: attach to a hub.
      u = static_cast<uint32_t>(rng.UniformBounded(1 + p.nodes / 20));
      v = static_cast<uint32_t>(rng.UniformBounded(p.nodes));
    } else if (mode < 0.5) {
      // Chain-ish: local edge.
      u = static_cast<uint32_t>(rng.UniformBounded(p.nodes));
      v = (u + 1 + static_cast<uint32_t>(rng.UniformBounded(3))) % p.nodes;
    } else {
      u = static_cast<uint32_t>(rng.UniformBounded(p.nodes));
      v = static_cast<uint32_t>(rng.UniformBounded(p.nodes));
    }
    triples.push_back(
        {u, v, static_cast<uint32_t>(rng.UniformBounded(p.labels))});
  }
  return BuildSimpleGraph(p.nodes, std::move(triples));
}

class FuzzRoundTrip : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(FuzzRoundTrip, FullPipeline) {
  const FuzzParam& p = GetParam();
  Alphabet alphabet;
  Hypergraph graph = RandomGraph(p, &alphabet);

  Rng rng(p.seed ^ 0xF00D);
  CompressOptions options;
  options.track_node_mapping = true;
  options.max_rank = 2 + static_cast<int>(rng.UniformBounded(5));
  options.prune = rng.Bernoulli(0.8);
  options.connect_components = rng.Bernoulli(0.8);
  NodeOrderKind orders[] = {NodeOrderKind::kNatural, NodeOrderKind::kBfs,
                            NodeOrderKind::kDfs, NodeOrderKind::kRandom,
                            NodeOrderKind::kFp0, NodeOrderKind::kFp};
  options.node_order = orders[rng.UniformBounded(6)];

  auto result = Compress(graph, alphabet, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SlhrGrammar& grammar = result.value().grammar;
  ASSERT_TRUE(grammar.Validate().ok()) << grammar.Validate().ToString();

  // Exact reconstruction through the mapping.
  auto original = DeriveOriginal(grammar, result.value().mapping);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  ASSERT_TRUE(original.value().EqualUpToEdgeOrder(graph))
      << "seed " << p.seed;

  // Binary round trip preserves val(G) exactly.
  auto bytes = EncodeGrammar(grammar);
  auto decoded = DecodeGrammar(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto val_a = Derive(grammar);
  auto val_b = Derive(decoded.value());
  ASSERT_TRUE(val_a.ok());
  ASSERT_TRUE(val_b.ok());
  ASSERT_TRUE(val_a.value() == val_b.value());

  // Aggregate queries agree with brute force on val(G).
  uint32_t comps = 0;
  ConnectedComponents(val_a.value(), &comps);
  EXPECT_EQ(CountConnectedComponents(grammar), comps);
  auto extrema = ComputeDegreeExtrema(grammar);
  ASSERT_TRUE(extrema.ok()) << extrema.status().ToString();
  auto stats = ComputeDegreeStats(val_a.value());
  EXPECT_EQ(extrema.value().min_degree, stats.min_degree);
  EXPECT_EQ(extrema.value().max_degree, stats.max_degree);

  // Reachability spot checks.
  ReachabilityIndex reach(grammar);
  for (int i = 0; i < 40; ++i) {
    uint64_t u = rng.UniformBounded(val_a.value().num_nodes());
    uint64_t v = rng.UniformBounded(val_a.value().num_nodes());
    bool truth = DirectedReachable(val_a.value(), static_cast<NodeId>(u))[v];
    ASSERT_EQ(reach.Reachable(u, v), truth)
        << "seed " << p.seed << ": " << u << " -> " << v;
  }
}

std::vector<FuzzParam> MakeFuzzParams() {
  std::vector<FuzzParam> params;
  uint64_t seed = 1000;
  for (uint32_t nodes : {20u, 150u, 600u}) {
    for (uint32_t density : {1u, 3u, 8u}) {
      for (uint32_t labels : {1u, 4u}) {
        params.push_back({seed++, nodes, nodes * density, labels});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Battery, FuzzRoundTrip,
                         ::testing::ValuesIn(MakeFuzzParams()),
                         [](const auto& suite_info) {
                           const FuzzParam& p = suite_info.param;
                           return "n" + std::to_string(p.nodes) + "_e" +
                                  std::to_string(p.edges) + "_l" +
                                  std::to_string(p.labels);
                         });

}  // namespace
}  // namespace grepair
