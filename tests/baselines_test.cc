// Tests for the comparison compressors: k^2-tree graphs, LM, HN and
// string RePair — all verified by exact decompression round trips.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/baselines/deflate.h"
#include "src/baselines/hn.h"
#include "src/baselines/k2_compressor.h"
#include "src/baselines/lm.h"
#include "src/baselines/string_repair.h"
#include "src/datasets/generators.h"
#include "src/util/rng.h"

namespace grepair {
namespace {

// Canonical unlabeled out-adjacency edge set for comparisons.
std::vector<std::pair<uint32_t, uint32_t>> EdgeSet(const Hypergraph& g) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (const auto& e : g.edges()) {
    if (e.att.size() == 2) edges.push_back({e.att[0], e.att[1]});
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

TEST(DeflateTest, RoundTrip) {
  Rng rng(1);
  std::vector<uint8_t> data(10000);
  for (auto& b : data) b = static_cast<uint8_t>(rng.UniformBounded(16));
  auto deflated = DeflateBytes(data);
  EXPECT_LT(deflated.size(), data.size());  // low-entropy input shrinks
  auto inflated = InflateBytes(deflated, data.size());
  ASSERT_TRUE(inflated.ok());
  EXPECT_EQ(inflated.value(), data);
}

TEST(K2CompressorTest, RoundTripLabeled) {
  GeneratedGraph gg = ErdosRenyi(300, 1000, 61, 4);
  auto rep = K2GraphRepresentation::Build(gg.graph, gg.alphabet);
  auto bytes = rep.Serialize();
  auto back = K2GraphRepresentation::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().ToGraph().EqualUpToEdgeOrder(rep.ToGraph()));
  EXPECT_TRUE(rep.ToGraph().EqualUpToEdgeOrder(gg.graph) ||
              rep.ToGraph().num_edges() == gg.graph.num_edges());
}

TEST(K2CompressorTest, NeighborQueries) {
  GeneratedGraph gg = ErdosRenyi(120, 500, 62, 2);
  auto rep = K2GraphRepresentation::Build(gg.graph, gg.alphabet);
  for (const auto& e : gg.graph.edges()) {
    EXPECT_TRUE(rep.HasEdge(e.att[0], e.att[1], e.label));
  }
  // Out-neighbor spot checks per label.
  for (uint32_t v = 0; v < 40; ++v) {
    for (Label l = 0; l < gg.alphabet.size(); ++l) {
      std::vector<uint32_t> expected;
      for (const auto& e : gg.graph.edges()) {
        if (e.label == l && e.att[0] == v) expected.push_back(e.att[1]);
      }
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(rep.OutNeighbors(v, l), expected);
    }
  }
}

class LmSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(LmSweep, RoundTripsAtChunkSize) {
  GeneratedGraph gg = BarabasiAlbert(500, 4, 63);
  auto compressed = LmCompress(gg.graph, GetParam());
  auto back = LmDecompress(compressed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(EdgeSet(back.value()), EdgeSet(gg.graph));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, LmSweep,
                         ::testing::Values(1, 3, 16, 64));

TEST(LmTest, CompressesWebLikeGraphs) {
  // Nodes in a BA graph share neighbors; LM + Deflate must beat the
  // trivial 2x32-bit edge list comfortably.
  GeneratedGraph gg = BarabasiAlbert(3000, 5, 64);
  auto compressed = LmCompress(gg.graph);
  double bpe = compressed.SizeBytes() * 8.0 / compressed.num_edges;
  EXPECT_LT(bpe, 32.0);
}

TEST(LmTest, EmptyAndTinyGraphs) {
  Hypergraph empty(0);
  auto c = LmCompress(empty);
  auto back = LmDecompress(c);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_nodes(), 0u);

  Hypergraph one(3);
  one.AddSimpleEdge(2, 0, 0);
  c = LmCompress(one);
  back = LmDecompress(c);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(EdgeSet(back.value()), EdgeSet(one));
}

TEST(HnTest, RoundTripsOnBicliqueHeavyGraph) {
  // Plant explicit bicliques: groups of sources sharing target sets.
  Rng rng(65);
  std::vector<std::array<uint32_t, 3>> triples;
  uint32_t n = 400;
  for (uint32_t group = 0; group < 12; ++group) {
    std::vector<uint32_t> targets;
    for (int t = 0; t < 8; ++t) {
      targets.push_back(static_cast<uint32_t>(rng.UniformBounded(n)));
    }
    for (int s = 0; s < 10; ++s) {
      uint32_t src = static_cast<uint32_t>(rng.UniformBounded(n));
      for (uint32_t t : targets) triples.push_back({src, t, 0});
    }
  }
  for (int i = 0; i < 300; ++i) {
    triples.push_back({static_cast<uint32_t>(rng.UniformBounded(n)),
                       static_cast<uint32_t>(rng.UniformBounded(n)), 0});
  }
  Hypergraph g = BuildSimpleGraph(n, std::move(triples));

  auto compressed = HnCompress(g);
  EXPECT_GT(compressed.patterns, 0u) << "planted bicliques not found";
  EXPECT_LT(compressed.residual_edges, g.num_edges());
  auto back = HnDecompress(compressed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(EdgeSet(back.value()), EdgeSet(g));
}

TEST(HnTest, RandomGraphsRoundTrip) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    GeneratedGraph gg = ErdosRenyi(250, 900, seed, 1);
    auto compressed = HnCompress(gg.graph);
    auto back = HnDecompress(compressed);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(EdgeSet(back.value()), EdgeSet(gg.graph)) << seed;
  }
}

TEST(HnTest, BeatsPlainK2OnBicliques) {
  // The virtual-node trick must pay off where bicliques dominate.
  Rng rng(66);
  std::vector<std::array<uint32_t, 3>> triples;
  uint32_t n = 600;
  for (uint32_t group = 0; group < 20; ++group) {
    uint32_t src_base = group * 20;
    std::vector<uint32_t> targets;
    for (int t = 0; t < 12; ++t) {
      targets.push_back(400 + static_cast<uint32_t>(
                                  rng.UniformBounded(200)));
    }
    for (int s = 0; s < 15; ++s) {
      for (uint32_t t : targets) {
        triples.push_back({src_base + s % 20, t, 0});
      }
    }
  }
  Hypergraph g = BuildSimpleGraph(n, std::move(triples));
  Alphabet alpha;
  alpha.Add("e", 2);
  auto hn = HnCompress(g);
  size_t k2 = K2CompressedSize(g, alpha);
  EXPECT_LT(hn.SizeBytes(), k2);
}

TEST(StringRePairTest, ClassicExample) {
  // abcabcabc -> expect nested rules and a 3-symbol-ish sequence.
  std::vector<uint32_t> input = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  auto result = StringRePair(input, 3);
  EXPECT_GE(result.rules.size(), 1u);
  EXPECT_LT(result.sequence.size(), input.size());
  EXPECT_EQ(StringRePairExpand(result), input);
}

TEST(StringRePairTest, OverlappingPairs) {
  // aaaa: occurrences of (a,a) overlap; greedy takes positions 0 and 2.
  std::vector<uint32_t> input = {0, 0, 0, 0};
  auto result = StringRePair(input, 1);
  EXPECT_EQ(StringRePairExpand(result), input);
}

TEST(StringRePairTest, RandomSequencesRoundTrip) {
  Rng rng(67);
  for (int trial = 0; trial < 20; ++trial) {
    uint32_t sigma = 2 + static_cast<uint32_t>(rng.UniformBounded(6));
    std::vector<uint32_t> input(200 + rng.UniformBounded(800));
    for (auto& s : input) {
      s = static_cast<uint32_t>(rng.UniformBounded(sigma));
    }
    auto result = StringRePair(input, sigma);
    ASSERT_EQ(StringRePairExpand(result), input) << "trial " << trial;
  }
}

TEST(StringRePairTest, RepetitiveInputCompressesWell) {
  std::vector<uint32_t> unit = {3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<uint32_t> input;
  for (int i = 0; i < 256; ++i) {
    input.insert(input.end(), unit.begin(), unit.end());
  }
  auto result = StringRePair(input, 10);
  EXPECT_EQ(StringRePairExpand(result), input);
  // Grammar must be logarithmic-ish, far below the input length.
  EXPECT_LT(result.rules.size() * 2 + result.sequence.size(),
            input.size() / 8);
}

TEST(StringRePairTest, AdjListBaselineProducesReasonableSizes) {
  GeneratedGraph gg = BarabasiAlbert(800, 4, 68);
  size_t bytes = AdjListRePairSizeBytes(gg.graph);
  EXPECT_GT(bytes, 0u);
  double bpe = bytes * 8.0 / gg.graph.num_edges();
  EXPECT_LT(bpe, 64.0);
}

}  // namespace
}  // namespace grepair
