// k^2-tree tests: membership/neighbor queries against brute force over
// random matrices (parameterized over k and density), edge cases, and
// serialization round trips.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/k2tree/bitvector.h"
#include "src/k2tree/k2tree.h"
#include "src/util/rng.h"

namespace grepair {
namespace {

TEST(RankBitVectorTest, RankMatchesBruteForce) {
  Rng rng(3);
  RankBitVector bv;
  std::vector<bool> bits;
  for (int i = 0; i < 5000; ++i) {
    bool b = rng.Bernoulli(0.3);
    bits.push_back(b);
    bv.PushBack(b);
  }
  bv.Finalize();
  size_t ones = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    ASSERT_EQ(bv.Rank1(i), ones) << "at " << i;
    if (bits[i]) ++ones;
    ASSERT_EQ(bv.Get(i), bits[i]);
  }
  EXPECT_EQ(bv.Rank1(bits.size()), ones);
  EXPECT_EQ(bv.num_ones(), ones);
}

TEST(RankBitVectorTest, FromWordsRoundTrip) {
  RankBitVector bv;
  for (int i = 0; i < 130; ++i) bv.PushBack(i % 3 == 0);
  bv.Finalize();
  RankBitVector copy = RankBitVector::FromWords(bv.words(), bv.size());
  EXPECT_EQ(copy.size(), bv.size());
  for (size_t i = 0; i < bv.size(); ++i) EXPECT_EQ(copy.Get(i), bv.Get(i));
  EXPECT_EQ(copy.Rank1(100), bv.Rank1(100));
}

struct K2Param {
  int k;
  uint32_t rows, cols;
  double density;
};

class K2TreeRandom : public ::testing::TestWithParam<K2Param> {};

TEST_P(K2TreeRandom, MatchesBruteForce) {
  const K2Param p = GetParam();
  Rng rng(static_cast<uint64_t>(p.k) * 1000 + p.rows + p.cols);
  std::set<std::pair<uint32_t, uint32_t>> truth;
  uint64_t target = static_cast<uint64_t>(p.rows * p.cols * p.density);
  while (truth.size() < target) {
    truth.insert({static_cast<uint32_t>(rng.UniformBounded(p.rows)),
                  static_cast<uint32_t>(rng.UniformBounded(p.cols))});
  }
  std::vector<std::pair<uint32_t, uint32_t>> cells(truth.begin(),
                                                   truth.end());
  K2Tree tree = K2Tree::Build(p.rows, p.cols, cells, p.k);
  EXPECT_EQ(tree.num_cells(), truth.size());

  // Membership on a sample plus all true cells.
  for (const auto& c : cells) {
    ASSERT_TRUE(tree.Contains(c.first, c.second));
  }
  for (int i = 0; i < 500; ++i) {
    uint32_t r = static_cast<uint32_t>(rng.UniformBounded(p.rows));
    uint32_t c = static_cast<uint32_t>(rng.UniformBounded(p.cols));
    ASSERT_EQ(tree.Contains(r, c), truth.count({r, c}) > 0)
        << r << "," << c;
  }

  // Row/column reporting.
  for (uint32_t r = 0; r < std::min<uint32_t>(p.rows, 40); ++r) {
    std::vector<uint32_t> expected;
    for (const auto& c : cells) {
      if (c.first == r) expected.push_back(c.second);
    }
    auto got = tree.RowNeighbors(r);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expected) << "row " << r;
  }
  for (uint32_t c = 0; c < std::min<uint32_t>(p.cols, 40); ++c) {
    std::vector<uint32_t> expected;
    for (const auto& cell : cells) {
      if (cell.second == c) expected.push_back(cell.first);
    }
    auto got = tree.ColNeighbors(c);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expected) << "col " << c;
  }

  // Full reconstruction.
  EXPECT_EQ(tree.AllCells(), cells);

  // Serialization round trip.
  BitWriter w;
  tree.Serialize(&w);
  auto bytes = w.TakeBytes();
  BitReader r(bytes);
  auto back = K2Tree::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().AllCells(), cells);
  EXPECT_EQ(back.value().num_rows(), p.rows);
  EXPECT_EQ(back.value().num_cols(), p.cols);
  EXPECT_EQ(back.value().StorageBits(), tree.StorageBits());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, K2TreeRandom,
    ::testing::Values(K2Param{2, 64, 64, 0.05}, K2Param{2, 100, 100, 0.02},
                      K2Param{2, 1000, 1000, 0.002},
                      K2Param{2, 37, 91, 0.05},  // rectangular
                      K2Param{3, 81, 81, 0.03}, K2Param{4, 256, 256, 0.01},
                      K2Param{2, 5, 5, 0.5},     // tiny and dense
                      K2Param{2, 1, 8, 0.5}),    // single row
    [](const auto& suite_info) {
      return "k" + std::to_string(suite_info.param.k) + "_" +
             std::to_string(suite_info.param.rows) + "x" +
             std::to_string(suite_info.param.cols) + "_d" +
             std::to_string(static_cast<int>(suite_info.param.density * 1000));
    });

TEST(K2TreeTest, EmptyMatrix) {
  K2Tree tree = K2Tree::Build(10, 10, {});
  EXPECT_EQ(tree.num_cells(), 0u);
  EXPECT_FALSE(tree.Contains(3, 3));
  EXPECT_TRUE(tree.RowNeighbors(3).empty());
  EXPECT_TRUE(tree.AllCells().empty());
  BitWriter w;
  tree.Serialize(&w);
  auto bytes = w.TakeBytes();
  BitReader r(bytes);
  auto back = K2Tree::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_cells(), 0u);
}

TEST(K2TreeTest, SingleCell) {
  K2Tree tree = K2Tree::Build(1000, 1000, {{999, 0}});
  EXPECT_TRUE(tree.Contains(999, 0));
  EXPECT_FALSE(tree.Contains(0, 999));
  EXPECT_EQ(tree.RowNeighbors(999), std::vector<uint32_t>{0});
  EXPECT_EQ(tree.ColNeighbors(0), std::vector<uint32_t>{999});
}

TEST(K2TreeTest, DuplicateCellsMerged) {
  K2Tree tree = K2Tree::Build(8, 8, {{1, 2}, {1, 2}, {1, 2}});
  EXPECT_EQ(tree.num_cells(), 1u);
}

TEST(K2TreeTest, FullMatrixDense) {
  std::vector<std::pair<uint32_t, uint32_t>> cells;
  for (uint32_t r = 0; r < 8; ++r) {
    for (uint32_t c = 0; c < 8; ++c) cells.push_back({r, c});
  }
  K2Tree tree = K2Tree::Build(8, 8, cells);
  EXPECT_EQ(tree.num_cells(), 64u);
  EXPECT_EQ(tree.AllCells().size(), 64u);
  for (uint32_t r = 0; r < 8; ++r) {
    EXPECT_EQ(tree.RowNeighbors(r).size(), 8u);
  }
}

TEST(K2TreeTest, SparseStarIsSmall) {
  // A star row: structure bits should be near-linear in cells, far
  // below the 4M-bit dense matrix.
  std::vector<std::pair<uint32_t, uint32_t>> cells;
  for (uint32_t c = 0; c < 100; ++c) cells.push_back({0, c * 17 % 2048});
  K2Tree tree = K2Tree::Build(2048, 2048, cells);
  EXPECT_LT(tree.StorageBits(), 6000u);
}

TEST(K2TreeTest, DeserializeGarbageFails) {
  std::vector<uint8_t> garbage = {0x00, 0x00, 0x00};
  BitReader r(garbage);
  auto res = K2Tree::Deserialize(&r);
  EXPECT_FALSE(res.ok());
}

}  // namespace
}  // namespace grepair
