// Unit tests for bit streams, byte spans/cursors, Elias codes, RNG
// determinism and union-find.

#include <gtest/gtest.h>

#include <vector>

#include "src/util/bit_stream.h"
#include "src/util/byte_io.h"
#include "src/util/elias.h"
#include "src/util/hashing.h"
#include "src/util/rng.h"
#include "src/util/union_find.h"

namespace grepair {
namespace {

TEST(ByteSourceTest, ReadsAreZeroCopyAndBounded) {
  std::vector<uint8_t> data;
  PutU32LE(0xDEADBEEFu, &data);
  PutU64LE(42, &data);
  data.insert(data.end(), {9, 8, 7});
  ByteSource src(SpanOf(data), "test-buffer");
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  ASSERT_TRUE(src.ReadU32LE(&u32).ok());
  ASSERT_TRUE(src.ReadU64LE(&u64).ok());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 42u);
  ByteSpan tail;
  ASSERT_TRUE(src.ReadSpan(3, &tail).ok());
  EXPECT_EQ(tail.data, data.data() + 12);  // a borrowed view, no copy
  EXPECT_TRUE(src.ExpectExhausted("test-buffer").ok());
}

TEST(ByteSourceTest, TruncationErrorsNameContextOffsetAndSizes) {
  std::vector<uint8_t> data = {1, 2, 3};
  ByteSource src(SpanOf(data), "shard.bin");
  uint64_t v = 0;
  auto status = src.ReadU64LE(&v);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  // The error names the source, the failing offset, and
  // expected-vs-actual byte counts.
  EXPECT_NE(status.message().find("shard.bin"), std::string::npos);
  EXPECT_NE(status.message().find("offset 0"), std::string::npos);
  EXPECT_NE(status.message().find("need 8"), std::string::npos);
  EXPECT_NE(status.message().find("have 3"), std::string::npos);

  ASSERT_TRUE(src.Skip(2).ok());
  auto trailing = src.ExpectExhausted("frame");
  ASSERT_FALSE(trailing.ok());
  EXPECT_NE(trailing.message().find("1 trailing byte"), std::string::npos);
}

TEST(ByteSinkTest, MirrorsTheFreeHelpers) {
  ByteSink sink;
  sink.PutU8(7);
  sink.PutU32LE(0x01020304u);
  sink.PutU64LE(0x0102030405060708ull);
  std::vector<uint8_t> expected = {7};
  PutU32LE(0x01020304u, &expected);
  PutU64LE(0x0102030405060708ull, &expected);
  EXPECT_EQ(sink.bytes(), expected);
  ByteSink other;
  other.Append(SpanOf(expected));
  EXPECT_EQ(other.TakeBytes(), expected);
}

TEST(HashBytesTest, DetectsEverySingleByteChange) {
  std::vector<uint8_t> data(57);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 37);
  }
  uint64_t base = HashBytes(data.data(), data.size());
  EXPECT_EQ(base, HashBytes(data.data(), data.size()));  // deterministic
  for (size_t i = 0; i < data.size(); ++i) {
    auto tweaked = data;
    tweaked[i] ^= 0x10;
    EXPECT_NE(HashBytes(tweaked.data(), tweaked.size()), base)
        << "byte " << i;
  }
  // Length is part of the hash (zero-padded tails must not collide).
  std::vector<uint8_t> padded = data;
  padded.push_back(0);
  EXPECT_NE(HashBytes(padded.data(), padded.size()), base);
}

TEST(BitStreamTest, SingleBitsRoundTrip) {
  BitWriter w;
  std::vector<bool> bits = {1, 0, 0, 1, 1, 1, 0, 1, 0, 0, 1};
  for (bool b : bits) w.PutBit(b);
  EXPECT_EQ(w.bit_size(), bits.size());
  BitReader r(w.bytes());
  for (bool expected : bits) {
    bool b = false;
    ASSERT_TRUE(r.ReadBit(&b).ok());
    EXPECT_EQ(b, expected);
  }
  bool overflow = false;
  // Byte padding remains readable, but the 17th bit is out of range.
  for (size_t i = bits.size(); i < 16; ++i) {
    ASSERT_TRUE(r.ReadBit(&overflow).ok());
    EXPECT_FALSE(overflow);  // padding is zero
  }
  EXPECT_FALSE(r.ReadBit(&overflow).ok());
}

TEST(BitStreamTest, MultiBitValues) {
  BitWriter w;
  w.PutBits(0b1011, 4);
  w.PutBits(0xFFFFFFFFull, 32);
  w.PutBits(0, 7);
  w.PutBits(1, 1);
  BitReader r(w.bytes());
  uint64_t v = 0;
  ASSERT_TRUE(r.ReadBits(4, &v).ok());
  EXPECT_EQ(v, 0b1011u);
  ASSERT_TRUE(r.ReadBits(32, &v).ok());
  EXPECT_EQ(v, 0xFFFFFFFFull);
  ASSERT_TRUE(r.ReadBits(8, &v).ok());
  EXPECT_EQ(v, 1u);
}

TEST(BitStreamTest, AlignToByte) {
  BitWriter w;
  w.PutBit(true);
  w.AlignToByte();
  EXPECT_EQ(w.bit_size(), 8u);
  w.PutBits(0xAB, 8);
  BitReader r(w.bytes());
  bool b;
  ASSERT_TRUE(r.ReadBit(&b).ok());
  r.AlignToByte();
  uint64_t v;
  ASSERT_TRUE(r.ReadBits(8, &v).ok());
  EXPECT_EQ(v, 0xABu);
}

TEST(EliasTest, KnownGammaCodes) {
  // gamma(1) = "1", gamma(2) = "010", gamma(5) = "00101".
  BitWriter w;
  EliasGammaEncode(1, &w);
  EXPECT_EQ(w.bit_size(), 1u);
  EliasGammaEncode(2, &w);
  EliasGammaEncode(5, &w);
  EXPECT_EQ(w.bit_size(), 1u + 3u + 5u);
  BitReader r(w.bytes());
  uint64_t v;
  ASSERT_TRUE(EliasGammaDecode(&r, &v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(EliasGammaDecode(&r, &v).ok());
  EXPECT_EQ(v, 2u);
  ASSERT_TRUE(EliasGammaDecode(&r, &v).ok());
  EXPECT_EQ(v, 5u);
}

TEST(EliasTest, DeltaLengthsMatchEncoder) {
  BitWriter w;
  size_t before = 0;
  for (uint64_t n : {1ull, 2ull, 3ull, 17ull, 128ull, 12345ull}) {
    EliasDeltaEncode(n, &w);
    EXPECT_EQ(static_cast<int>(w.bit_size() - before), EliasDeltaLength(n))
        << "n=" << n;
    before = w.bit_size();
  }
}

class EliasRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EliasRoundTrip, GammaAndDelta) {
  uint64_t n = GetParam();
  BitWriter w;
  EliasGammaEncode(n, &w);
  EliasDeltaEncode(n, &w);
  BitReader r(w.bytes());
  uint64_t g = 0, d = 0;
  ASSERT_TRUE(EliasGammaDecode(&r, &g).ok());
  ASSERT_TRUE(EliasDeltaDecode(&r, &d).ok());
  EXPECT_EQ(g, n);
  EXPECT_EQ(d, n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EliasRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 15, 16, 63, 64,
                                           100, 1023, 1024, 65535, 1u << 20,
                                           (1ull << 32) - 1, 1ull << 40,
                                           ~0ull >> 1));

TEST(EliasTest, RandomizedRoundTrip) {
  Rng rng(7);
  BitWriter w;
  std::vector<uint64_t> values;
  for (int i = 0; i < 2000; ++i) {
    uint64_t n = (rng.Next() >> (rng.Next() % 60)) + 1;
    values.push_back(n);
    EliasDeltaEncode(n, &w);
  }
  BitReader r(w.bytes());
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(EliasDeltaDecode(&r, &v).ok());
    ASSERT_EQ(v, expected);
  }
}

TEST(EliasTest, DecodeCorruptStreamFails) {
  // 70 zero bits: no gamma terminator.
  BitWriter w;
  for (int i = 0; i < 70; ++i) w.PutBit(false);
  BitReader r(w.bytes());
  uint64_t v;
  EXPECT_FALSE(EliasGammaDecode(&r, &v).ok());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformBoundedInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformBounded(17), 17u);
  }
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(9);
  int low = 0;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Zipf(1000, 1.1) < 10) ++low;
  }
  // Zipf mass concentrates on small ranks; uniform would give ~1%.
  EXPECT_GT(low, kTrials / 10);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(6);
  EXPECT_EQ(uf.CountSets(), 6u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Same(0, 1));
  EXPECT_FALSE(uf.Same(0, 2));
  EXPECT_TRUE(uf.Union(0, 2));
  EXPECT_TRUE(uf.Same(1, 3));
  EXPECT_EQ(uf.CountSets(), 3u);
  EXPECT_EQ(uf.SetSize(3), 4u);
}

}  // namespace
}  // namespace grepair
