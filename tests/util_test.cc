// Unit tests for bit streams, Elias codes, RNG determinism and
// union-find.

#include <gtest/gtest.h>

#include <vector>

#include "src/util/bit_stream.h"
#include "src/util/elias.h"
#include "src/util/rng.h"
#include "src/util/union_find.h"

namespace grepair {
namespace {

TEST(BitStreamTest, SingleBitsRoundTrip) {
  BitWriter w;
  std::vector<bool> bits = {1, 0, 0, 1, 1, 1, 0, 1, 0, 0, 1};
  for (bool b : bits) w.PutBit(b);
  EXPECT_EQ(w.bit_size(), bits.size());
  BitReader r(w.bytes());
  for (bool expected : bits) {
    bool b = false;
    ASSERT_TRUE(r.ReadBit(&b).ok());
    EXPECT_EQ(b, expected);
  }
  bool overflow = false;
  // Byte padding remains readable, but the 17th bit is out of range.
  for (size_t i = bits.size(); i < 16; ++i) {
    ASSERT_TRUE(r.ReadBit(&overflow).ok());
    EXPECT_FALSE(overflow);  // padding is zero
  }
  EXPECT_FALSE(r.ReadBit(&overflow).ok());
}

TEST(BitStreamTest, MultiBitValues) {
  BitWriter w;
  w.PutBits(0b1011, 4);
  w.PutBits(0xFFFFFFFFull, 32);
  w.PutBits(0, 7);
  w.PutBits(1, 1);
  BitReader r(w.bytes());
  uint64_t v = 0;
  ASSERT_TRUE(r.ReadBits(4, &v).ok());
  EXPECT_EQ(v, 0b1011u);
  ASSERT_TRUE(r.ReadBits(32, &v).ok());
  EXPECT_EQ(v, 0xFFFFFFFFull);
  ASSERT_TRUE(r.ReadBits(8, &v).ok());
  EXPECT_EQ(v, 1u);
}

TEST(BitStreamTest, AlignToByte) {
  BitWriter w;
  w.PutBit(true);
  w.AlignToByte();
  EXPECT_EQ(w.bit_size(), 8u);
  w.PutBits(0xAB, 8);
  BitReader r(w.bytes());
  bool b;
  ASSERT_TRUE(r.ReadBit(&b).ok());
  r.AlignToByte();
  uint64_t v;
  ASSERT_TRUE(r.ReadBits(8, &v).ok());
  EXPECT_EQ(v, 0xABu);
}

TEST(EliasTest, KnownGammaCodes) {
  // gamma(1) = "1", gamma(2) = "010", gamma(5) = "00101".
  BitWriter w;
  EliasGammaEncode(1, &w);
  EXPECT_EQ(w.bit_size(), 1u);
  EliasGammaEncode(2, &w);
  EliasGammaEncode(5, &w);
  EXPECT_EQ(w.bit_size(), 1u + 3u + 5u);
  BitReader r(w.bytes());
  uint64_t v;
  ASSERT_TRUE(EliasGammaDecode(&r, &v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(EliasGammaDecode(&r, &v).ok());
  EXPECT_EQ(v, 2u);
  ASSERT_TRUE(EliasGammaDecode(&r, &v).ok());
  EXPECT_EQ(v, 5u);
}

TEST(EliasTest, DeltaLengthsMatchEncoder) {
  BitWriter w;
  size_t before = 0;
  for (uint64_t n : {1ull, 2ull, 3ull, 17ull, 128ull, 12345ull}) {
    EliasDeltaEncode(n, &w);
    EXPECT_EQ(static_cast<int>(w.bit_size() - before), EliasDeltaLength(n))
        << "n=" << n;
    before = w.bit_size();
  }
}

class EliasRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EliasRoundTrip, GammaAndDelta) {
  uint64_t n = GetParam();
  BitWriter w;
  EliasGammaEncode(n, &w);
  EliasDeltaEncode(n, &w);
  BitReader r(w.bytes());
  uint64_t g = 0, d = 0;
  ASSERT_TRUE(EliasGammaDecode(&r, &g).ok());
  ASSERT_TRUE(EliasDeltaDecode(&r, &d).ok());
  EXPECT_EQ(g, n);
  EXPECT_EQ(d, n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EliasRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 15, 16, 63, 64,
                                           100, 1023, 1024, 65535, 1u << 20,
                                           (1ull << 32) - 1, 1ull << 40,
                                           ~0ull >> 1));

TEST(EliasTest, RandomizedRoundTrip) {
  Rng rng(7);
  BitWriter w;
  std::vector<uint64_t> values;
  for (int i = 0; i < 2000; ++i) {
    uint64_t n = (rng.Next() >> (rng.Next() % 60)) + 1;
    values.push_back(n);
    EliasDeltaEncode(n, &w);
  }
  BitReader r(w.bytes());
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(EliasDeltaDecode(&r, &v).ok());
    ASSERT_EQ(v, expected);
  }
}

TEST(EliasTest, DecodeCorruptStreamFails) {
  // 70 zero bits: no gamma terminator.
  BitWriter w;
  for (int i = 0; i < 70; ++i) w.PutBit(false);
  BitReader r(w.bytes());
  uint64_t v;
  EXPECT_FALSE(EliasGammaDecode(&r, &v).ok());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformBoundedInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformBounded(17), 17u);
  }
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(9);
  int low = 0;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Zipf(1000, 1.1) < 10) ++low;
  }
  // Zipf mass concentrates on small ranks; uniform would give ~1%.
  EXPECT_GT(low, kTrials / 10);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(6);
  EXPECT_EQ(uf.CountSets(), 6u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Same(0, 1));
  EXPECT_FALSE(uf.Same(0, 2));
  EXPECT_TRUE(uf.Union(0, 2));
  EXPECT_TRUE(uf.Same(1, 3));
  EXPECT_EQ(uf.CountSets(), 3u);
  EXPECT_EQ(uf.SetSize(3), 4u);
}

}  // namespace
}  // namespace grepair
