// The memoized batch query engine, end to end:
//
//   * cached (warm) and batched answers are byte-identical to fresh
//     uncached single-call answers, against ground truth,
//   * for every query thread count (1 vs 8) and cache configuration
//     (default, tiny-budget eviction path, disabled),
//   * the grammar-direct memo tables (grepair) change nothing about
//     answers while filling their counters,
//   * batches reject invalid input as a whole and handle empties.
//
// Everything here runs on small generated graphs so the suite stays
// fast under TSan; bench/query_speedup.cc owns the timing claims.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/api/grepair_api.h"

namespace grepair {
namespace api {
namespace {

// Ground-truth sorted unique out/in neighbors from the input graph.
std::vector<uint64_t> TruthNeighbors(const Hypergraph& g, uint64_t node,
                                     bool out) {
  std::vector<uint64_t> result;
  for (const HEdge& e : g.edges()) {
    if (e.att.size() != 2) continue;
    if (out && e.att[0] == node) result.push_back(e.att[1]);
    if (!out && e.att[1] == node) result.push_back(e.att[0]);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::unique_ptr<CompressedRep> MakeSharded(const GeneratedGraph& gg,
                                           const char* backend = "sharded:grepair",
                                           int shards = 4) {
  auto codec = CodecRegistry::Create(backend).ValueOrDie();
  CodecOptions options;
  options.Set("shards", std::to_string(shards));
  options.Set("strategy", "bfs");
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  EXPECT_TRUE(rep.ok()) << rep.status().ToString();
  return std::move(rep).ValueOrDie();
}

shard::ShardedRep* AsSharded(CompressedRep* rep) {
  auto* sharded = dynamic_cast<shard::ShardedRep*>(rep);
  EXPECT_NE(sharded, nullptr);
  return sharded;
}

TEST(QueryCacheTest, WarmAnswersIdenticalToColdAndGroundTruth) {
  GeneratedGraph gg = BarabasiAlbert(150, 3, 5);
  auto rep = MakeSharded(gg);
  for (int pass = 0; pass < 3; ++pass) {
    for (uint64_t v = 0; v < gg.graph.num_nodes(); ++v) {
      auto out = rep->OutNeighbors(v);
      auto in = rep->InNeighbors(v);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      ASSERT_TRUE(in.ok()) << in.status().ToString();
      EXPECT_EQ(out.value(), TruthNeighbors(gg.graph, v, true))
          << "pass " << pass << " node " << v;
      EXPECT_EQ(in.value(), TruthNeighbors(gg.graph, v, false))
          << "pass " << pass << " node " << v;
    }
  }
  // Three full passes over every node must have warmed the cache.
  QueryStats stats = rep->query_stats();
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.single_queries, 0u);
}

TEST(QueryCacheTest, BatchMatchesSinglesAndIsThreadCountInvariant) {
  GeneratedGraph gg = CoAuthorship(200, 260, 17);
  auto rep_single = MakeSharded(gg);
  auto rep_t1 = MakeSharded(gg);
  auto rep_t8 = MakeSharded(gg);
  AsSharded(rep_t1.get())->set_query_threads(1);
  AsSharded(rep_t8.get())->set_query_threads(8);

  std::vector<uint64_t> nodes;
  for (uint64_t v = 0; v < gg.graph.num_nodes(); ++v) {
    nodes.push_back(v);
    if (v % 3 == 0) nodes.push_back(v);  // repeats exercise the dedup
  }
  auto b1 = rep_t1->OutNeighborsBatch(nodes);
  auto b8 = rep_t8->OutNeighborsBatch(nodes);
  ASSERT_TRUE(b1.ok()) << b1.status().ToString();
  ASSERT_TRUE(b8.ok()) << b8.status().ToString();
  EXPECT_EQ(b1.value(), b8.value());
  for (size_t j = 0; j < nodes.size(); ++j) {
    auto single = rep_single->OutNeighbors(nodes[j]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(b1.value()[j], single.value()) << "batch index " << j;
    EXPECT_EQ(b1.value()[j], TruthNeighbors(gg.graph, nodes[j], true));
  }
  QueryStats stats = rep_t8->query_stats();
  EXPECT_EQ(stats.batch_calls, 1u);
  EXPECT_EQ(stats.batch_items, nodes.size());
}

TEST(QueryCacheTest, DisabledAndTinyCachesStayCorrect) {
  GeneratedGraph gg = ErdosRenyi(120, 360, 23);
  auto rep_default = MakeSharded(gg);
  auto rep_disabled = MakeSharded(gg);
  auto rep_tiny = MakeSharded(gg);
  AsSharded(rep_disabled.get())->set_query_cache_bytes(0);
  // A budget that fits roughly one decoded shard forces the eviction
  // path on every shard change.
  AsSharded(rep_tiny.get())->set_query_cache_bytes(4096);

  std::vector<uint64_t> nodes;
  for (uint64_t v = 0; v < gg.graph.num_nodes(); ++v) nodes.push_back(v);
  for (int pass = 0; pass < 2; ++pass) {
    auto d = rep_default->OutNeighborsBatch(nodes);
    auto off = rep_disabled->OutNeighborsBatch(nodes);
    auto tiny = rep_tiny->OutNeighborsBatch(nodes);
    ASSERT_TRUE(d.ok() && off.ok() && tiny.ok());
    EXPECT_EQ(d.value(), off.value());
    EXPECT_EQ(d.value(), tiny.value());
  }
  // Disabled means disabled: no decodes, no hits, no footprint.
  QueryStats off_stats = rep_disabled->query_stats();
  EXPECT_EQ(off_stats.shard_decodes, 0u);
  EXPECT_EQ(off_stats.cache_hits, 0u);
  EXPECT_EQ(off_stats.cache_bytes_used, 0u);
  QueryStats tiny_stats = rep_tiny->query_stats();
  EXPECT_LE(tiny_stats.cache_bytes_used, 4096u);
}

TEST(QueryCacheTest, ReachableBatchMatchesSinglesAcrossThreads) {
  GeneratedGraph gg = BarabasiAlbert(90, 2, 31);
  auto rep_single = MakeSharded(gg);
  auto rep_batch = MakeSharded(gg);
  AsSharded(rep_batch.get())->set_query_threads(8);

  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  for (uint64_t v = 0; v < gg.graph.num_nodes(); v += 2) {
    pairs.push_back({v, (v * 7 + 3) % gg.graph.num_nodes()});
  }
  auto batch = rep_batch->ReachableBatch(pairs);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value().size(), pairs.size());
  for (size_t k = 0; k < pairs.size(); ++k) {
    auto single = rep_single->Reachable(pairs[k].first, pairs[k].second);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch.value()[k] != 0, single.value()) << "pair " << k;
  }
}

TEST(QueryCacheTest, ConcurrentMixedQueriesAgreeWithTruth) {
  GeneratedGraph gg = BarabasiAlbert(120, 3, 41);
  auto rep = MakeSharded(gg);
  AsSharded(rep.get())->set_query_threads(4);
  // Hammer one shared rep from several threads mixing batch and
  // single calls; the cache tiers fill concurrently underneath.
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      std::vector<uint64_t> nodes;
      for (uint64_t v = t; v < gg.graph.num_nodes(); v += 2) {
        nodes.push_back(v % gg.graph.num_nodes());
      }
      for (int round = 0; round < 3; ++round) {
        auto batch = rep->OutNeighborsBatch(nodes);
        if (!batch.ok()) {
          ++failures;
          return;
        }
        for (size_t j = 0; j < nodes.size(); ++j) {
          if (batch.value()[j] != TruthNeighbors(gg.graph, nodes[j], true)) {
            ++failures;
            return;
          }
        }
        for (uint64_t v : {uint64_t(t), uint64_t(t + 11)}) {
          auto single = rep->OutNeighbors(v % gg.graph.num_nodes());
          if (!single.ok()) ++failures;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(QueryCacheTest, GrepairMemoTablesAreTransparent) {
  GeneratedGraph gg = RdfTypes(300, 9, 77);
  auto codec = CodecRegistry::Create("grepair").ValueOrDie();
  auto rep_a = codec->Compress(gg.graph, gg.alphabet).ValueOrDie();
  for (int pass = 0; pass < 2; ++pass) {
    // A fresh rep per pass: its first-touch answers are the memo-free
    // reference for rep_a's warmed tables.
    auto rep_fresh = codec->Compress(gg.graph, gg.alphabet).ValueOrDie();
    for (uint64_t v = 0; v < gg.graph.num_nodes(); v += 5) {
      auto warmed = rep_a->OutNeighbors(v);
      auto fresh = rep_fresh->OutNeighbors(v);
      ASSERT_TRUE(warmed.ok() && fresh.ok());
      EXPECT_EQ(warmed.value(), fresh.value()) << "node " << v;
      EXPECT_EQ(warmed.value(), TruthNeighbors(gg.graph, v, true));
    }
  }
  QueryStats stats = rep_a->query_stats();
  EXPECT_GT(stats.single_queries, 0u);
  // Star-shaped RDF grammars force descents through nonterminals, so
  // tables must have been built and re-used across the two passes.
  EXPECT_GT(stats.memo_entries, 0u);
  EXPECT_GT(stats.memo_hits, 0u);
}

TEST(QueryCacheTest, BatchRejectsInvalidInputWholesale) {
  GeneratedGraph gg = BarabasiAlbert(40, 2, 3);
  auto rep = MakeSharded(gg);
  uint64_t n = gg.graph.num_nodes();
  auto bad = rep->OutNeighborsBatch({0, 1, n});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  auto bad_pairs = rep->ReachableBatch({{0, 1}, {1, n}});
  EXPECT_EQ(bad_pairs.status().code(), StatusCode::kInvalidArgument);
  // Nothing should have been answered or cached for a failed batch.
  EXPECT_EQ(rep->query_stats().batch_calls, 0u);
}

TEST(QueryCacheTest, EmptyBatchesSucceed) {
  GeneratedGraph gg = BarabasiAlbert(40, 2, 3);
  auto rep = MakeSharded(gg);
  auto out = rep->OutNeighborsBatch({});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
  auto reach = rep->ReachableBatch({});
  ASSERT_TRUE(reach.ok());
  EXPECT_TRUE(reach.value().empty());
}

TEST(QueryCacheTest, DefaultBatchFallbackMatchesSingles) {
  // k2 has no batch override: the API's default loop must behave
  // exactly like hand-looped singles.
  GeneratedGraph gg = ErdosRenyi(80, 200, 9);
  auto codec = CodecRegistry::Create("k2").ValueOrDie();
  auto rep = codec->Compress(gg.graph, gg.alphabet).ValueOrDie();
  std::vector<uint64_t> nodes = {0, 5, 5, 17, 79};
  auto batch = rep->OutNeighborsBatch(nodes);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (size_t j = 0; j < nodes.size(); ++j) {
    auto single = rep->OutNeighbors(nodes[j]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch.value()[j], single.value());
  }
}

TEST(QueryCacheTest, OptionErrorsListAcceptedKeys) {
  GeneratedGraph gg = BarabasiAlbert(30, 2, 1);
  auto codec = CodecRegistry::Create("k2").ValueOrDie();
  CodecOptions options;
  options.Set("kk", "3");  // typo'd key
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kInvalidArgument);
  // The error must name the offender and list what is accepted.
  EXPECT_NE(rep.status().message().find("kk"), std::string::npos)
      << rep.status().message();
  EXPECT_NE(rep.status().message().find("accepted keys"), std::string::npos)
      << rep.status().message();
  EXPECT_NE(rep.status().message().find("k"), std::string::npos);
}

}  // namespace
}  // namespace api
}  // namespace grepair
