// Tests for the CompressedGraph facade: original-id transparency,
// agreement with the uncompressed graph, and serialization.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/datasets/generators.h"
#include "src/encoding/grammar_coder.h"
#include "src/graph/graph_algos.h"
#include "src/query/compressed_graph.h"
#include "src/util/rng.h"

namespace grepair {
namespace {

std::vector<uint64_t> BruteOut(const Hypergraph& g, uint64_t node) {
  std::vector<uint64_t> out;
  for (const auto& e : g.edges()) {
    if (e.att.size() == 2 && e.att[0] == node) out.push_back(e.att[1]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

class CompressedGraphSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(CompressedGraphSweep, AgreesWithOriginalIds) {
  std::string which = GetParam();
  GeneratedGraph gg;
  if (which == "coauth") gg = CoAuthorship(140, 200, 61);
  if (which == "rdf") gg = RdfTypes(400, 8, 62);
  if (which == "copies") gg = DisjointCopies(CycleWithDiagonal(), 40, "c");
  if (which == "dblp") gg = DblpVersions(3, 50, 30, 63, "dblp");

  auto cg = CompressedGraph::FromGraph(gg.graph, gg.alphabet);
  ASSERT_TRUE(cg.ok()) << cg.status().ToString();
  const CompressedGraph& g = cg.value();
  EXPECT_EQ(g.num_nodes(), gg.graph.num_nodes());
  EXPECT_EQ(g.num_edges(), gg.graph.num_edges());

  // Neighborhoods in ORIGINAL ids must match the input graph directly.
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    uint64_t v = rng.UniformBounded(gg.graph.num_nodes());
    ASSERT_EQ(g.OutNeighbors(v), BruteOut(gg.graph, v))
        << which << " node " << v;
  }

  // Reachability in original ids vs BFS on the input graph.
  for (int i = 0; i < 30; ++i) {
    uint64_t u = rng.UniformBounded(gg.graph.num_nodes());
    auto truth = DirectedReachable(gg.graph, static_cast<NodeId>(u));
    for (int j = 0; j < 10; ++j) {
      uint64_t v = rng.UniformBounded(gg.graph.num_nodes());
      ASSERT_EQ(g.Reachable(u, v), truth[v] != 0)
          << which << ": " << u << " -> " << v;
    }
  }

  // Aggregates.
  uint32_t comps = 0;
  ConnectedComponents(gg.graph, &comps);
  EXPECT_EQ(g.NumConnectedComponents(), comps);
  std::vector<uint64_t> hist(gg.alphabet.size(), 0);
  for (const auto& e : gg.graph.edges()) ++hist[e.label];
  EXPECT_EQ(g.LabelHistogram(), hist);

  // Decompression returns the exact input.
  auto back = g.Decompress();
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().EqualUpToEdgeOrder(gg.graph));

  EXPECT_GT(g.SerializedSize(), 0u);
  EXPECT_EQ(g.SerializedSize(), g.SerializedSize());  // cached
}

INSTANTIATE_TEST_SUITE_P(Graphs, CompressedGraphSweep,
                         ::testing::Values("coauth", "rdf", "copies",
                                           "dblp"));

TEST(CompressedGraphTest, FromGrammarUsesValNumbering) {
  GeneratedGraph gg = RdfTypes(300, 6, 64);
  auto compressed = Compress(gg.graph, gg.alphabet, {});
  ASSERT_TRUE(compressed.ok());
  auto bytes = EncodeGrammar(compressed.value().grammar);
  auto decoded = DecodeGrammar(bytes);
  ASSERT_TRUE(decoded.ok());

  auto cg = CompressedGraph::FromGrammar(std::move(decoded).ValueOrDie());
  ASSERT_TRUE(cg.ok());
  EXPECT_EQ(cg.value().num_nodes(), gg.graph.num_nodes());
  EXPECT_EQ(cg.value().num_edges(), gg.graph.num_edges());
  // Numbering is val(G)'s: verify against the derived graph.
  auto val = Derive(cg.value().grammar());
  ASSERT_TRUE(val.ok());
  for (uint64_t v = 0; v < 50; ++v) {
    EXPECT_EQ(cg.value().OutNeighbors(v), BruteOut(val.value(), v));
  }
}

TEST(CompressedGraphTest, RejectsInvalidGrammar) {
  Alphabet alpha;
  alpha.Add("a", 2);
  SlhrGrammar bad(alpha, Hypergraph(2));
  Label nt = bad.AddNonterminal(3, "X");  // rank mismatch with rhs below
  Hypergraph rhs(2);
  rhs.AddSimpleEdge(0, 1, 0);
  rhs.SetExternal({0, 1});
  bad.SetRule(nt, std::move(rhs));
  EXPECT_FALSE(CompressedGraph::FromGrammar(std::move(bad)).ok());
}

TEST(CompressedGraphTest, ValNumberingWhenMappingDisabled) {
  GeneratedGraph gg = CoAuthorship(80, 100, 65);
  auto cg = CompressedGraph::FromGraph(gg.graph, gg.alphabet, {},
                                       /*keep_original_ids=*/false);
  ASSERT_TRUE(cg.ok());
  auto val = Derive(cg.value().grammar());
  ASSERT_TRUE(val.ok());
  for (uint64_t v = 0; v < 40; ++v) {
    EXPECT_EQ(cg.value().OutNeighbors(v), BruteOut(val.value(), v));
  }
}

}  // namespace
}  // namespace grepair
