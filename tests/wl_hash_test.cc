// Tests for the WL isomorphism hash used as the round-trip oracle:
// isomorphic graphs must hash equal; structurally different graphs
// should differ.

#include <gtest/gtest.h>

#include "src/graph/wl_hash.h"
#include "src/util/rng.h"

namespace grepair {
namespace {

Hypergraph Permuted(const Hypergraph& g, const std::vector<NodeId>& perm) {
  Hypergraph out(g.num_nodes());
  for (const auto& e : g.edges()) {
    std::vector<NodeId> att;
    for (NodeId v : e.att) att.push_back(perm[v]);
    out.AddEdge(e.label, std::move(att));
  }
  std::vector<NodeId> ext;
  for (NodeId v : g.ext()) ext.push_back(perm[v]);
  out.SetExternal(std::move(ext));
  return out;
}

TEST(WlHashTest, InvariantUnderPermutation) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Hypergraph g(30);
    for (int i = 0; i < 70; ++i) {
      uint32_t u = static_cast<uint32_t>(rng.UniformBounded(30));
      uint32_t v = static_cast<uint32_t>(rng.UniformBounded(30));
      if (u != v) g.AddSimpleEdge(u, v, rng.UniformBounded(3));
    }
    std::vector<NodeId> perm(30);
    for (NodeId i = 0; i < 30; ++i) perm[i] = i;
    rng.Shuffle(&perm);
    EXPECT_EQ(WlHash(g), WlHash(Permuted(g, perm))) << "trial " << trial;
  }
}

TEST(WlHashTest, DetectsEdgeChanges) {
  Hypergraph g(5);
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(1, 2, 0);
  Hypergraph h = g;
  h.AddSimpleEdge(2, 3, 0);
  EXPECT_NE(WlHash(g), WlHash(h));
}

TEST(WlHashTest, DetectsLabelChanges) {
  Hypergraph g(3), h(3);
  g.AddSimpleEdge(0, 1, 0);
  h.AddSimpleEdge(0, 1, 1);
  EXPECT_NE(WlHash(g), WlHash(h));
}

TEST(WlHashTest, DetectsDirectionChanges) {
  Hypergraph g(4), h(4);
  // path 0->1->2 plus 3; vs 0->1<-2 plus 3.
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(1, 2, 0);
  h.AddSimpleEdge(0, 1, 0);
  h.AddSimpleEdge(2, 1, 0);
  EXPECT_NE(WlHash(g), WlHash(h));
}

TEST(WlHashTest, DetectsIsolatedNodeCount) {
  Hypergraph g(3), h(4);
  g.AddSimpleEdge(0, 1, 0);
  h.AddSimpleEdge(0, 1, 0);
  EXPECT_NE(WlHash(g), WlHash(h));
}

TEST(WlHashTest, ExternalSequenceMatters) {
  Hypergraph g(3), h(3);
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(1, 2, 0);
  h = g;
  g.SetExternal({0, 2});
  h.SetExternal({2, 0});
  EXPECT_NE(WlHash(g), WlHash(h));
}

TEST(WlHashTest, HyperedgeOrderMatters) {
  // A lone hyperedge (0,1,2) is isomorphic to (0,2,1) — swapping nodes
  // 1 and 2 maps one onto the other — so those must hash EQUAL. An
  // anchor edge pinning node 1 breaks the symmetry: then the
  // attachment order is observable and the hashes must differ.
  Hypergraph sym_a(3), sym_b(3);
  sym_a.AddEdge(0, {0, 1, 2});
  sym_b.AddEdge(0, {0, 2, 1});
  EXPECT_EQ(WlHash(sym_a), WlHash(sym_b));

  Hypergraph g(3), h(3);
  g.AddEdge(0, {0, 1, 2});
  g.AddSimpleEdge(0, 1, 1);
  h.AddEdge(0, {0, 2, 1});
  h.AddSimpleEdge(0, 1, 1);
  EXPECT_NE(WlHash(g), WlHash(h));
}

TEST(WlHashTest, DisjointCopiesScaleDetected) {
  // n copies vs n+1 copies of the same unit must differ.
  auto build = [](int copies) {
    Hypergraph g(static_cast<uint32_t>(3 * copies));
    for (int c = 0; c < copies; ++c) {
      NodeId base = static_cast<NodeId>(3 * c);
      g.AddSimpleEdge(base, base + 1, 0);
      g.AddSimpleEdge(base + 1, base + 2, 0);
      g.AddSimpleEdge(base + 2, base, 0);
    }
    return g;
  };
  EXPECT_NE(WlHash(build(4)), WlHash(build(5)));
  EXPECT_EQ(WlHash(build(4)), WlHash(build(4)));
}

}  // namespace
}  // namespace grepair
