// Unit tests for the graph-algorithm substrates: connected components
// over hyperedges, traversal orders, directed reachability and Tarjan
// SCC (the skeleton-graph building block of Theorem 6).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/graph/graph_algos.h"

namespace grepair {
namespace {

TEST(ConnectedComponentsTest, HyperedgeConnectsAllAttachments) {
  Hypergraph g(6);
  g.AddEdge(0, {0, 1, 2});  // one rank-3 hyperedge
  g.AddSimpleEdge(3, 4, 1);
  uint32_t n = 0;
  auto comp = ConnectedComponents(g, &n);
  EXPECT_EQ(n, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[0], comp[5]);
  EXPECT_NE(comp[3], comp[5]);
}

TEST(TraversalTest, BfsCoversAllNodesOnce) {
  Hypergraph g(7);
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(1, 2, 0);
  g.AddSimpleEdge(4, 5, 0);  // second component; 3 and 6 isolated
  auto order = BfsOrder(g);
  ASSERT_EQ(order.size(), 7u);
  std::vector<NodeId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(sorted[v], v);
  // BFS from node 0 visits 0,1 before 2.
  auto pos = [&](NodeId v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(1), pos(2));
}

TEST(TraversalTest, DfsIsPermutation) {
  Hypergraph g(5);
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(0, 2, 0);
  g.AddSimpleEdge(2, 3, 0);
  auto order = DfsOrder(g);
  std::vector<NodeId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  ASSERT_EQ(sorted.size(), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(sorted[v], v);
}

TEST(ReachabilityTest, FollowsDirection) {
  Hypergraph g(4);
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(1, 2, 0);
  g.AddSimpleEdge(3, 2, 0);
  auto reach = DirectedReachable(g, 0);
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[2]);
  EXPECT_FALSE(reach[3]);
}

TEST(SccTest, CycleAndTail) {
  // 0 -> 1 -> 2 -> 0 cycle, 2 -> 3 tail.
  std::vector<std::vector<NodeId>> adj{{1}, {2}, {0, 3}, {}};
  auto scc = TarjanScc(adj);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.comp[0], scc.comp[1]);
  EXPECT_EQ(scc.comp[1], scc.comp[2]);
  EXPECT_NE(scc.comp[0], scc.comp[3]);
  // Reverse topological numbering: edge 2->3 implies comp[2] >= comp[3].
  EXPECT_GE(scc.comp[2], scc.comp[3]);
}

TEST(SccTest, DagGivesSingletons) {
  std::vector<std::vector<NodeId>> adj{{1, 2}, {3}, {3}, {}};
  auto scc = TarjanScc(adj);
  EXPECT_EQ(scc.num_components, 4u);
  EXPECT_GE(scc.comp[0], scc.comp[1]);
  EXPECT_GE(scc.comp[1], scc.comp[3]);
}

TEST(SccTest, DeepChainDoesNotOverflow) {
  // 20k-node chain: the iterative implementation must not recurse.
  const uint32_t n = 20000;
  std::vector<std::vector<NodeId>> adj(n);
  for (uint32_t i = 0; i + 1 < n; ++i) adj[i].push_back(i + 1);
  auto scc = TarjanScc(adj);
  EXPECT_EQ(scc.num_components, n);
}

TEST(DegreeStatsTest, Summary) {
  Hypergraph g(4);
  g.AddSimpleEdge(0, 1, 0);
  g.AddSimpleEdge(0, 2, 0);
  g.AddSimpleEdge(0, 3, 0);
  auto stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.max_degree, 3u);
  EXPECT_EQ(stats.min_degree, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 6.0 / 4.0);
}

}  // namespace
}  // namespace grepair
