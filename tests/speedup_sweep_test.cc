// Parameterized sweeps for the one-pass speed-up queries across all
// workload families and option combinations: components, degree
// extrema, histograms and total degree must match brute force on
// val(G) for every configuration.

#include <gtest/gtest.h>

#include "src/datasets/generators.h"
#include "src/graph/graph_algos.h"
#include "src/grepair/compressor.h"
#include "src/query/speedup.h"

namespace grepair {
namespace {

struct SweepCase {
  const char* dataset;
  int max_rank;
  bool prune;
};

GeneratedGraph MakeGraph(const std::string& name) {
  if (name == "er") return ErdosRenyi(220, 700, 201, 3);
  if (name == "star") return RdfTypes(400, 6, 202);
  if (name == "entities") return RdfEntities(100, 9, 15, 203);
  if (name == "coauth") return CoAuthorship(130, 190, 204);
  if (name == "copies") {
    return DisjointCopies(CycleWithDiagonal(), 56, "c56");
  }
  if (name == "games") return GamePositions(35, 7, 3, 5, 205);
  ADD_FAILURE() << "unknown dataset " << name;
  return GeneratedGraph();
}

class SpeedupSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SpeedupSweep, AllAggregatesMatchBruteForce) {
  const SweepCase& c = GetParam();
  GeneratedGraph gg = MakeGraph(c.dataset);
  CompressOptions options;
  options.max_rank = c.max_rank;
  options.prune = c.prune;
  auto result = Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(result.ok());
  const SlhrGrammar& grammar = result.value().grammar;
  auto derived = Derive(grammar);
  ASSERT_TRUE(derived.ok());
  const Hypergraph& val = derived.value();

  // Components.
  uint32_t comps = 0;
  ConnectedComponents(val, &comps);
  EXPECT_EQ(CountConnectedComponents(grammar), comps);

  // Degree extrema.
  auto stats = ComputeDegreeStats(val);
  auto extrema = ComputeDegreeExtrema(grammar);
  ASSERT_TRUE(extrema.ok()) << extrema.status().ToString();
  EXPECT_EQ(extrema.value().min_degree, stats.min_degree);
  EXPECT_EQ(extrema.value().max_degree, stats.max_degree);

  // Label histogram + total degree.
  std::vector<uint64_t> hist(grammar.num_terminals(), 0);
  uint64_t total_degree = 0;
  for (const auto& e : val.edges()) {
    ++hist[e.label];
    total_degree += e.att.size();
  }
  EXPECT_EQ(LabelHistogram(grammar), hist);
  EXPECT_EQ(TotalDegree(grammar), total_degree);

  // Multiplicities are consistent with the histogram totals.
  auto mult = RuleMultiplicities(grammar);
  uint64_t derived_edges = 0;
  for (const auto& e : grammar.start().edges()) {
    if (grammar.IsTerminal(e.label)) ++derived_edges;
  }
  for (uint32_t j = 0; j < grammar.num_rules(); ++j) {
    for (const auto& e : grammar.rhs_by_index(j).edges()) {
      if (grammar.IsTerminal(e.label)) derived_edges += mult[j];
    }
  }
  EXPECT_EQ(derived_edges, val.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    Battery, SpeedupSweep,
    ::testing::Values(SweepCase{"er", 4, true}, SweepCase{"er", 2, false},
                      SweepCase{"star", 4, true},
                      SweepCase{"star", 3, false},
                      SweepCase{"entities", 4, true},
                      SweepCase{"coauth", 4, true},
                      SweepCase{"coauth", 6, false},
                      SweepCase{"copies", 4, true},
                      SweepCase{"copies", 2, true},
                      SweepCase{"games", 4, true}),
    [](const auto& suite_info) {
      const SweepCase& c = suite_info.param;
      std::string name = std::string(c.dataset) + "_r" +
                         std::to_string(c.max_rank) +
                         (c.prune ? "_prune" : "_noprune");
      return name;
    });

TEST(SpeedupEdgeCases, IsolatedNodesHaveZeroDegreeExtrema) {
  Alphabet alpha;
  alpha.Add("a", 2);
  SlhrGrammar g(alpha, Hypergraph(5));  // 5 isolated nodes, no edges
  EXPECT_EQ(CountConnectedComponents(g), 5u);
  // Isolated nodes are a *legitimate* min_degree = 0, not an error.
  auto extrema = ComputeDegreeExtrema(g);
  ASSERT_TRUE(extrema.ok()) << extrema.status().ToString();
  EXPECT_EQ(extrema.value().min_degree, 0u);
  EXPECT_EQ(extrema.value().max_degree, 0u);
  EXPECT_EQ(TotalDegree(g), 0u);
  EXPECT_EQ(LabelHistogram(g), std::vector<uint64_t>{0});
}

TEST(SpeedupEdgeCases, MixedIsolatedAndConnectedNodes) {
  Alphabet alpha;
  alpha.Add("a", 2);
  Hypergraph start(4);  // nodes 2 and 3 stay isolated
  start.AddSimpleEdge(0, 1, 0);
  SlhrGrammar g(alpha, std::move(start));
  auto extrema = ComputeDegreeExtrema(g);
  ASSERT_TRUE(extrema.ok()) << extrema.status().ToString();
  EXPECT_EQ(extrema.value().min_degree, 0u);  // the isolated nodes
  EXPECT_EQ(extrema.value().max_degree, 1u);
}

TEST(SpeedupEdgeCases, TrulyEmptyGrammarIsAnError) {
  Alphabet alpha;
  alpha.Add("a", 2);
  SlhrGrammar g(alpha, Hypergraph(0));  // derives no nodes at all
  // Previously this reported min = max = 0, indistinguishable from a
  // graph of isolated nodes; now the empty case is a typed error.
  auto extrema = ComputeDegreeExtrema(g);
  ASSERT_FALSE(extrema.ok());
  EXPECT_EQ(extrema.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(CountConnectedComponents(g), 0u);
  EXPECT_EQ(TotalDegree(g), 0u);
}

}  // namespace
}  // namespace grepair
