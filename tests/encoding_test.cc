// Tests for the binary grammar format (Section III-C2): exact
// round trips over compressed real workloads, per-section accounting,
// the paper's "start graph dominates" observation, and corruption
// handling.

#include <gtest/gtest.h>

#include "src/datasets/generators.h"
#include "src/encoding/grammar_coder.h"
#include "src/grepair/compressor.h"
#include "src/util/elias.h"

namespace grepair {
namespace {

// Compress, encode, decode, and require the decoded grammar to derive
// the exact same graph (val respects canonical start-edge order).
void CheckCodecRoundTrip(const GeneratedGraph& gg,
                         const CompressOptions& options) {
  auto result = Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(result.ok());
  const SlhrGrammar& grammar = result.value().grammar;

  EncodeStats stats;
  auto bytes = EncodeGrammar(grammar, &stats);
  EXPECT_EQ(stats.total_bits,
            stats.header_bits + stats.rule_bits + stats.start_graph_bits);
  EXPECT_LE(stats.total_bits, bytes.size() * 8);

  auto decoded = DecodeGrammar(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().num_rules(), grammar.num_rules());
  EXPECT_EQ(decoded.value().num_terminals(), grammar.num_terminals());

  auto original = Derive(grammar);
  auto roundtrip = Derive(decoded.value());
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(roundtrip.ok());
  EXPECT_TRUE(original.value() == roundtrip.value()) << gg.name;
}

TEST(EncodingTest, RoundTripChain) {
  GeneratedGraph gg;
  gg.name = "chain";
  gg.alphabet.Add("a", 2);
  gg.graph = Hypergraph(40);
  for (uint32_t v = 0; v + 1 < 40; ++v) gg.graph.AddSimpleEdge(v, v + 1, 0);
  CheckCodecRoundTrip(gg, CompressOptions());
}

class EncodingSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(EncodingSweep, RoundTrips) {
  std::string which = GetParam();
  GeneratedGraph gg;
  if (which == "er") gg = ErdosRenyi(250, 800, 41, 3);
  if (which == "rdf") gg = RdfTypes(600, 9, 42);
  if (which == "entities") gg = RdfEntities(150, 10, 12, 43);
  if (which == "coauth") gg = CoAuthorship(180, 260, 44);
  if (which == "games") gg = GamePositions(50, 8, 4, 6, 45);
  if (which == "copies") {
    gg = DisjointCopies(CycleWithDiagonal(), 64, "copies");
  }
  ASSERT_GT(gg.graph.num_nodes(), 0u);
  CheckCodecRoundTrip(gg, CompressOptions());

  CompressOptions no_prune;
  no_prune.prune = false;
  CheckCodecRoundTrip(gg, no_prune);
}

INSTANTIATE_TEST_SUITE_P(Datasets, EncodingSweep,
                         ::testing::Values("er", "rdf", "entities", "coauth",
                                           "games", "copies"));

TEST(EncodingTest, StartGraphDominates) {
  // Section IV: ">90% of the output is the k^2-tree start graph" on
  // typical (not highly compressible) network graphs.
  GeneratedGraph gg = ErdosRenyi(2000, 8000, 46, 1);
  auto result = Compress(gg.graph, gg.alphabet, CompressOptions());
  ASSERT_TRUE(result.ok());
  EncodeStats stats;
  EncodeGrammar(result.value().grammar, &stats);
  EXPECT_GT(static_cast<double>(stats.start_graph_bits),
            0.5 * static_cast<double>(stats.total_bits));
}

TEST(EncodingTest, TerminalOnlyGrammar) {
  Alphabet alpha;
  alpha.Add("a", 2);
  alpha.Add("H", 3);
  Hypergraph s(6);
  s.AddSimpleEdge(0, 1, 0);
  s.AddSimpleEdge(1, 2, 0);
  s.AddEdge(1, {5, 3, 4});
  s.AddEdge(1, {2, 4, 0});
  SlhrGrammar grammar(alpha, s);
  NodeMapping no_mapping;
  CanonicalizeStartEdgeOrder(&grammar, nullptr);
  auto bytes = EncodeGrammar(grammar);
  auto decoded = DecodeGrammar(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(grammar.start() == decoded.value().start());
}

TEST(EncodingTest, HyperedgePermutationsRecovered) {
  // Hyperedges with all distinct attachment orders must decode to the
  // exact same attachment sequences.
  Alphabet alpha;
  alpha.Add("H", 3);
  Hypergraph s(5);
  s.AddEdge(0, {2, 0, 4});
  s.AddEdge(0, {4, 3, 0});
  s.AddEdge(0, {0, 1, 2});
  SlhrGrammar grammar(alpha, s);
  CanonicalizeStartEdgeOrder(&grammar, nullptr);
  auto decoded = DecodeGrammar(EncodeGrammar(grammar));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(grammar.start() == decoded.value().start());
}

TEST(EncodingTest, ParallelNonterminalEdgesSurvive) {
  // Two identical rank-2 nonterminal edges: the adjacency matrix alone
  // cannot express the multiplicity; the patch list must.
  Alphabet alpha;
  alpha.Add("a", 2);
  SlhrGrammar grammar(alpha, Hypergraph(3));
  Label nt = grammar.AddNonterminal(2, "A");
  Hypergraph rhs(3);
  rhs.AddSimpleEdge(0, 2, 0);
  rhs.AddSimpleEdge(2, 1, 0);
  rhs.SetExternal({0, 1});
  grammar.SetRule(nt, std::move(rhs));
  grammar.mutable_start()->AddEdge(nt, {0, 1});
  grammar.mutable_start()->AddEdge(nt, {0, 1});  // parallel duplicate
  grammar.mutable_start()->AddEdge(nt, {1, 2});
  CanonicalizeStartEdgeOrder(&grammar, nullptr);
  ASSERT_TRUE(grammar.Validate().ok());

  auto decoded = DecodeGrammar(EncodeGrammar(grammar));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().start().num_edges(), 3u);
  auto a = Derive(grammar);
  auto b = Derive(decoded.value());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a.value() == b.value());
}

TEST(EncodingTest, CorruptionRejected) {
  GeneratedGraph gg = RdfTypes(100, 4, 47);
  auto result = Compress(gg.graph, gg.alphabet, CompressOptions());
  ASSERT_TRUE(result.ok());
  auto bytes = EncodeGrammar(result.value().grammar);

  // Bad magic.
  auto bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(DecodeGrammar(bad).ok());

  // Truncation: dropping trailing bytes must not crash; it either
  // errors out or yields a grammar that fails validation.
  for (size_t keep : {size_t(4), bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + keep);
    auto decoded = DecodeGrammar(cut);
    if (decoded.ok()) {
      // Extremely unlikely, but if parsing succeeds the grammar must
      // still be internally consistent.
      EXPECT_TRUE(decoded.value().Validate().ok());
    }
  }
}

TEST(EncodingTest, HugeClaimedCountsRejectedWithoutAllocating) {
  // Regression: a corrupted Elias code used to size an allocation
  // directly (e.g. a rule count of 2^50 -> std::bad_alloc took the
  // process down before any per-rule decode could fail). Counts that
  // drive allocations must be rejected against the input size first.
  // Found by the dense bit-flip sweep in container_format_test.
  BitWriter w;
  w.PutBits(0x47524731, 32);          // format magic
  EliasDeltaEncode(2, &w);            // one terminal label
  EliasDeltaEncode(2, &w);            // ... of rank 1
  EliasDeltaEncode((1ull << 50) + 1, &w);  // 2^50 rules
  EliasDeltaEncode(10, &w);           // 9 start nodes
  auto decoded = DecodeGrammar(w.TakeBytes());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);

  // Same for the permutation dictionary: no rules, huge perm count.
  BitWriter w2;
  w2.PutBits(0x47524731, 32);
  EliasDeltaEncode(2, &w2);           // one terminal label
  EliasDeltaEncode(2, &w2);           // ... of rank 1
  EliasDeltaEncode(1, &w2);           // zero rules
  EliasDeltaEncode(10, &w2);          // 9 start nodes
  EliasDeltaEncode((1ull << 50) + 1, &w2);  // 2^50 permutations
  auto decoded2 = DecodeGrammar(w2.TakeBytes());
  ASSERT_FALSE(decoded2.ok());
  EXPECT_EQ(decoded2.status().code(), StatusCode::kCorruption);
}

TEST(EncodingTest, ZeroHasNoEliasCodeAndFailsClosed) {
  // Regression: BitLength(0) used to hit __builtin_clzll(0) — UB the
  // moment release builds compiled the guard assert out. All the
  // n == 0 entry points must now be defined: lengths report 0 and the
  // encoders append nothing.
  EXPECT_EQ(BitLength(0), 0);
  EXPECT_EQ(EliasGammaLength(0), 0);
  EXPECT_EQ(EliasDeltaLength(0), 0);

  BitWriter w;
  EliasGammaEncode(0, &w);
  EXPECT_EQ(w.bit_size(), 0u);
  EliasDeltaEncode(0, &w);
  EXPECT_EQ(w.bit_size(), 0u);

  // The writer still works afterwards, and the stream holds only what
  // the valid calls produced.
  EliasDeltaEncode(5, &w);
  EXPECT_EQ(w.bit_size(), static_cast<size_t>(EliasDeltaLength(5)));
  BitReader r(w.bytes());
  uint64_t v = 0;
  ASSERT_TRUE(EliasDeltaDecode(&r, &v).ok());
  EXPECT_EQ(v, 5u);
}

TEST(EncodingTest, BitLengthBoundaries) {
  EXPECT_EQ(BitLength(1), 1);
  EXPECT_EQ(BitLength(2), 2);
  EXPECT_EQ(BitLength(3), 2);
  EXPECT_EQ(BitLength((1ull << 63) - 1), 63);
  EXPECT_EQ(BitLength(1ull << 63), 64);
  EXPECT_EQ(BitLength(~0ull), 64);
}

TEST(EncodingTest, BitsPerEdgeHelper) {
  EXPECT_DOUBLE_EQ(BitsPerEdge(100, 100), 8.0);
  EXPECT_DOUBLE_EQ(BitsPerEdge(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(BitsPerEdge(10, 0), 0.0);
}

TEST(EncodingTest, StarGraphBeatsRawAdjacencyEncoding) {
  // The types-style star forest should compress to far fewer bits per
  // edge than an uncompressed grammar of the same graph.
  GeneratedGraph gg = RdfTypes(4000, 5, 48);
  auto compressed = Compress(gg.graph, gg.alphabet, CompressOptions());
  ASSERT_TRUE(compressed.ok());
  auto bytes = EncodeGrammar(compressed.value().grammar);

  SlhrGrammar plain(gg.alphabet, gg.graph);
  CanonicalizeStartEdgeOrder(&plain, nullptr);
  auto plain_bytes = EncodeGrammar(plain);
  EXPECT_LT(bytes.size() * 3, plain_bytes.size());
}

}  // namespace
}  // namespace grepair
