// Tests for grammar queries (Section V): node-ID <-> path mapping,
// neighborhood queries (Prop. 4), speed-up queries (Prop. 5 examples)
// and linear-time reachability (Theorem 6) — all validated against
// brute force on the materialized val(G).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/datasets/generators.h"
#include "src/graph/graph_algos.h"
#include "src/grepair/compressor.h"
#include "src/query/neighborhood.h"
#include "src/query/node_map.h"
#include "src/query/reachability.h"
#include "src/query/speedup.h"
#include "src/util/rng.h"

namespace grepair {
namespace {

SlhrGrammar CompressFor(const GeneratedGraph& gg,
                        bool prune = true) {
  CompressOptions options;
  options.prune = prune;
  auto result = Compress(gg.graph, gg.alphabet, options);
  EXPECT_TRUE(result.ok());
  return std::move(result.value().grammar);
}

GeneratedGraph MakeQueryGraph(const std::string& which) {
  if (which == "er") return ErdosRenyi(200, 700, 51, 2);
  if (which == "rdf") return RdfTypes(300, 8, 52);
  if (which == "coauth") return CoAuthorship(120, 200, 53);
  if (which == "copies") {
    return DisjointCopies(CycleWithDiagonal(), 48, "copies48");
  }
  if (which == "dblp") return DblpVersions(4, 40, 30, 54, "dblp");
  ADD_FAILURE() << "unknown " << which;
  return GeneratedGraph();
}

TEST(NodeMapTest, PathIdInverse) {
  GeneratedGraph gg = MakeQueryGraph("coauth");
  SlhrGrammar grammar = CompressFor(gg);
  NodeMap nm(grammar);
  ASSERT_EQ(nm.num_nodes(), gg.graph.num_nodes());
  for (uint64_t id = 0; id < nm.num_nodes(); ++id) {
    GPath path = nm.PathOf(id);
    EXPECT_EQ(nm.IdOf(path), id) << "id " << id;
  }
}

TEST(NodeMapTest, StartNodesMapToThemselves) {
  GeneratedGraph gg = MakeQueryGraph("copies");
  SlhrGrammar grammar = CompressFor(gg);
  NodeMap nm(grammar);
  for (NodeId v = 0; v < grammar.start().num_nodes(); ++v) {
    GPath path = nm.PathOf(v);
    EXPECT_EQ(path.start_edge, kInvalidEdge);
    EXPECT_EQ(path.node, v);
  }
}

class NeighborhoodSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(NeighborhoodSweep, MatchesBruteForce) {
  GeneratedGraph gg = MakeQueryGraph(GetParam());
  SlhrGrammar grammar = CompressFor(gg);
  auto derived = Derive(grammar);
  ASSERT_TRUE(derived.ok());
  const Hypergraph& val = derived.value();

  // Brute-force adjacency of val(G).
  std::vector<std::vector<uint64_t>> out_adj(val.num_nodes());
  std::vector<std::vector<uint64_t>> in_adj(val.num_nodes());
  for (const auto& e : val.edges()) {
    if (e.att.size() != 2) continue;
    out_adj[e.att[0]].push_back(e.att[1]);
    in_adj[e.att[1]].push_back(e.att[0]);
  }
  auto canon = [](std::vector<uint64_t> v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  };

  NeighborhoodIndex index(grammar);
  ASSERT_EQ(index.node_map().num_nodes(), val.num_nodes());
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    uint64_t id = rng.UniformBounded(val.num_nodes());
    EXPECT_EQ(index.OutNeighbors(id), canon(out_adj[id])) << "out " << id;
    EXPECT_EQ(index.InNeighbors(id), canon(in_adj[id])) << "in " << id;
  }
  // All nodes for the smaller graphs.
  if (val.num_nodes() <= 600) {
    for (uint64_t id = 0; id < val.num_nodes(); ++id) {
      ASSERT_EQ(index.OutNeighbors(id), canon(out_adj[id])) << id;
      ASSERT_EQ(index.InNeighbors(id), canon(in_adj[id])) << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, NeighborhoodSweep,
                         ::testing::Values("er", "rdf", "coauth", "copies",
                                           "dblp"));

class ReachabilitySweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ReachabilitySweep, MatchesBruteForce) {
  GeneratedGraph gg = MakeQueryGraph(GetParam());
  SlhrGrammar grammar = CompressFor(gg);
  auto derived = Derive(grammar);
  ASSERT_TRUE(derived.ok());
  const Hypergraph& val = derived.value();

  ReachabilityIndex index(grammar);
  Rng rng(77);
  // Sample sources; compare full reachability vectors.
  for (int i = 0; i < 25; ++i) {
    uint64_t from = rng.UniformBounded(val.num_nodes());
    auto truth = DirectedReachable(val, static_cast<NodeId>(from));
    for (int j = 0; j < 60; ++j) {
      uint64_t to = rng.UniformBounded(val.num_nodes());
      ASSERT_EQ(index.Reachable(from, to), truth[to] != 0)
          << from << " -> " << to;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, ReachabilitySweep,
                         ::testing::Values("er", "rdf", "coauth", "copies",
                                           "dblp"));

TEST(ReachabilityTest, DeepSharedSubtree) {
  // Both endpoints under the same start edge: exercises the
  // common-ancestor extension of Theorem 6. A long chain compresses
  // into nested rules, and all chain nodes live under few start edges.
  GeneratedGraph gg;
  gg.name = "chain";
  gg.alphabet.Add("a", 2);
  const uint32_t n = 200;
  gg.graph = Hypergraph(n);
  for (uint32_t v = 0; v + 1 < n; ++v) gg.graph.AddSimpleEdge(v, v + 1, 0);
  SlhrGrammar grammar = CompressFor(gg);
  auto derived = Derive(grammar);
  ASSERT_TRUE(derived.ok());

  ReachabilityIndex index(grammar);
  // Identify the derived chain order by walking out-neighbors.
  NeighborhoodIndex nbr(grammar);
  // Find the head: a node with no in-neighbors.
  uint64_t head = ~0ull;
  for (uint64_t v = 0; v < n; ++v) {
    if (nbr.InNeighbors(v).empty() && !nbr.OutNeighbors(v).empty()) {
      head = v;
      break;
    }
  }
  ASSERT_NE(head, ~0ull);
  std::vector<uint64_t> chain{head};
  while (true) {
    auto next = nbr.OutNeighbors(chain.back());
    if (next.empty()) break;
    ASSERT_EQ(next.size(), 1u);
    chain.push_back(next[0]);
  }
  ASSERT_EQ(chain.size(), n);
  // Forward pairs reachable, backward pairs not.
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    size_t a = rng.UniformBounded(n);
    size_t b = rng.UniformBounded(n);
    if (a > b) std::swap(a, b);
    EXPECT_TRUE(index.Reachable(chain[a], chain[b]));
    if (a != b) {
      EXPECT_FALSE(index.Reachable(chain[b], chain[a]));
    }
  }
}

TEST(SpeedupTest, LabelHistogramMatchesValuation) {
  GeneratedGraph gg = MakeQueryGraph("er");
  SlhrGrammar grammar = CompressFor(gg);
  auto derived = Derive(grammar);
  ASSERT_TRUE(derived.ok());
  std::vector<uint64_t> truth(grammar.num_terminals(), 0);
  for (const auto& e : derived.value().edges()) ++truth[e.label];
  EXPECT_EQ(LabelHistogram(grammar), truth);
}

TEST(SpeedupTest, ComponentsMatchBruteForce) {
  for (const char* which : {"er", "copies", "dblp", "rdf"}) {
    GeneratedGraph gg = MakeQueryGraph(which);
    SlhrGrammar grammar = CompressFor(gg);
    auto derived = Derive(grammar);
    ASSERT_TRUE(derived.ok());
    uint32_t truth = 0;
    ConnectedComponents(derived.value(), &truth);
    EXPECT_EQ(CountConnectedComponents(grammar), truth) << which;
  }
}

TEST(SpeedupTest, DegreeExtremaMatchBruteForce) {
  for (const char* which : {"er", "copies", "coauth"}) {
    GeneratedGraph gg = MakeQueryGraph(which);
    SlhrGrammar grammar = CompressFor(gg);
    auto derived = Derive(grammar);
    ASSERT_TRUE(derived.ok());
    auto truth = ComputeDegreeStats(derived.value());
    auto got = ComputeDegreeExtrema(grammar);
    ASSERT_TRUE(got.ok()) << which << ": " << got.status().ToString();
    EXPECT_EQ(got.value().min_degree, truth.min_degree) << which;
    EXPECT_EQ(got.value().max_degree, truth.max_degree) << which;
  }
}

TEST(SpeedupTest, TotalDegreeMatches) {
  GeneratedGraph gg = MakeQueryGraph("coauth");
  SlhrGrammar grammar = CompressFor(gg);
  auto derived = Derive(grammar);
  ASSERT_TRUE(derived.ok());
  uint64_t truth = 0;
  for (const auto& e : derived.value().edges()) truth += e.att.size();
  EXPECT_EQ(TotalDegree(grammar), truth);
}

TEST(SpeedupTest, MultiplicitiesOnNestedGrammar) {
  // Hand-built: S has 2 B-edges, B -> A A, so mult(B) = 2, mult(A) = 4.
  Alphabet alpha;
  alpha.Add("a", 2);
  SlhrGrammar g(alpha, Hypergraph(4));
  Label a = g.AddNonterminal(2, "A");
  {
    Hypergraph rhs(3);
    rhs.AddSimpleEdge(0, 2, 0);
    rhs.AddSimpleEdge(2, 1, 0);
    rhs.SetExternal({0, 1});
    g.SetRule(a, std::move(rhs));
  }
  Label b = g.AddNonterminal(2, "B");
  {
    Hypergraph rhs(3);
    rhs.AddEdge(a, {0, 2});
    rhs.AddEdge(a, {2, 1});
    rhs.SetExternal({0, 1});
    g.SetRule(b, std::move(rhs));
  }
  g.mutable_start()->AddEdge(b, {0, 1});
  g.mutable_start()->AddEdge(b, {2, 3});
  auto mult = RuleMultiplicities(g);
  EXPECT_EQ(mult[g.RuleIndex(a)], 4u);
  EXPECT_EQ(mult[g.RuleIndex(b)], 2u);
  EXPECT_EQ(LabelHistogram(g)[0], 8u);
}

}  // namespace
}  // namespace grepair
