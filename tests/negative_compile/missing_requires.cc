// Negative-compile TU: calls a GREPAIR_REQUIRES(mu_) method without
// holding mu_. Clang's thread-safety analysis MUST reject this under
// -Werror=thread-safety; the configure-time harness in
// cmake/ThreadSafetyChecks.cmake fails the build if it compiles.

#include "src/util/sync.h"

namespace {

class Counter {
 public:
  // VIOLATION: IncrementLocked requires mu_, which is not held here.
  void Increment() { IncrementLocked(); }

 private:
  void IncrementLocked() GREPAIR_REQUIRES(mu_) { ++value_; }

  grepair::Mutex mu_;
  int value_ GREPAIR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
