// Negative-compile TU: reads and writes a GREPAIR_GUARDED_BY field
// without holding its mutex. Clang's thread-safety analysis MUST
// reject this under -Werror=thread-safety; the configure-time harness
// in cmake/ThreadSafetyChecks.cmake fails the build if it compiles.

#include "src/util/sync.h"

namespace {

class Counter {
 public:
  // VIOLATION: value_ is guarded by mu_, which is not held here.
  void Increment() { ++value_; }
  int Get() { return value_; }

 private:
  grepair::Mutex mu_;
  int value_ GREPAIR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Get() == 1 ? 0 : 1;
}
