// Positive control for the thread-safety negative-compile harness
// (cmake/ThreadSafetyChecks.cmake): the same access patterns as the
// violation TUs, but correctly locked. This TU MUST compile under
// -Werror=thread-safety; if it does not, the harness (include paths,
// flags, sync.h itself) is broken and the violation checks prove
// nothing.

#include "src/util/sync.h"

namespace {

class Counter {
 public:
  void Increment() GREPAIR_LOCKS_EXCLUDED(mu_) {
    grepair::MutexLock lock(mu_);
    IncrementLocked();
  }

  int Get() GREPAIR_LOCKS_EXCLUDED(mu_) {
    grepair::MutexLock lock(mu_);
    return value_;
  }

 private:
  void IncrementLocked() GREPAIR_REQUIRES(mu_) { ++value_; }

  grepair::Mutex mu_;
  int value_ GREPAIR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Get() == 1 ? 0 : 1;
}
