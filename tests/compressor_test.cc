// End-to-end gRePair tests: round-trip correctness (exact via the node
// mapping, isomorphic via WL hashes), compression effectiveness on the
// structures the paper highlights, and option sweeps.

#include <gtest/gtest.h>

#include "src/datasets/generators.h"
#include "src/graph/wl_hash.h"
#include "src/grepair/compressor.h"

namespace grepair {
namespace {

CompressOptions TrackingOptions() {
  CompressOptions o;
  o.track_node_mapping = true;
  return o;
}

// Compresses and checks every invariant we can: grammar validity,
// val(G) isomorphic to the input (WL hash), and — with mapping — exact
// equality after renaming.
void CheckRoundTrip(const GeneratedGraph& gg, CompressOptions options) {
  options.track_node_mapping = true;
  auto result = Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SlhrGrammar& grammar = result.value().grammar;
  ASSERT_TRUE(grammar.Validate().ok()) << grammar.Validate().ToString();

  EXPECT_EQ(ValNodeCount(grammar), gg.graph.num_nodes());
  EXPECT_EQ(ValEdgeCount(grammar), gg.graph.num_edges());

  auto derived = Derive(grammar);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(WlHash(derived.value()), WlHash(gg.graph)) << gg.name;

  auto original = DeriveOriginal(grammar, result.value().mapping);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  EXPECT_TRUE(original.value().EqualUpToEdgeOrder(gg.graph)) << gg.name;
}

TEST(CompressorTest, TinyChainIsLossless) {
  GeneratedGraph gg;
  gg.name = "chain";
  gg.alphabet.Add("a", 2);
  gg.graph = Hypergraph(5);
  for (uint32_t v = 0; v + 1 < 5; ++v) gg.graph.AddSimpleEdge(v, v + 1, 0);
  CheckRoundTrip(gg, CompressOptions());
}

TEST(CompressorTest, PaperIntroExample) {
  // Figure 1b: three a-b chains around a cycle: gRePair should find the
  // a-b digram three times and build one rule for it.
  GeneratedGraph gg;
  gg.name = "fig1";
  gg.alphabet.Add("a", 2);
  gg.alphabet.Add("b", 2);
  gg.graph = Hypergraph(6);
  gg.graph.AddSimpleEdge(0, 3, 0);
  gg.graph.AddSimpleEdge(3, 1, 1);
  gg.graph.AddSimpleEdge(1, 4, 0);
  gg.graph.AddSimpleEdge(4, 2, 1);
  gg.graph.AddSimpleEdge(2, 5, 0);
  gg.graph.AddSimpleEdge(5, 0, 1);

  CompressOptions options = TrackingOptions();
  options.prune = false;
  auto result = Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(result.ok());
  const auto& grammar = result.value().grammar;
  // One rule A -> (a b chain), three A-edges in S (then possibly an
  // AA rule from a second digram round).
  ASSERT_GE(grammar.num_rules(), 1u);
  const Hypergraph& rhs0 = grammar.rhs_by_index(0);
  EXPECT_EQ(rhs0.num_edges(), 2u);
  EXPECT_EQ(rhs0.num_nodes(), 3u);
  EXPECT_EQ(rhs0.rank(), 2);
  CheckRoundTrip(gg, options);
}

TEST(CompressorTest, Figure1cIncompressible) {
  // Figure 1c: the chains' middle nodes carry extra c-edges, so the
  // a-b digram has rank 3 and "no compression would be achieved";
  // with pruning the grammar must fall back to (close to) the input.
  GeneratedGraph gg;
  gg.name = "fig1c";
  gg.alphabet.Add("a", 2);
  gg.alphabet.Add("b", 2);
  gg.alphabet.Add("c", 2);
  gg.graph = Hypergraph(8);
  gg.graph.AddSimpleEdge(0, 3, 0);
  gg.graph.AddSimpleEdge(3, 1, 1);
  gg.graph.AddSimpleEdge(1, 4, 0);
  gg.graph.AddSimpleEdge(4, 2, 1);
  gg.graph.AddSimpleEdge(2, 5, 0);
  gg.graph.AddSimpleEdge(5, 0, 1);
  gg.graph.AddSimpleEdge(3, 6, 2);  // extra edges on two middles
  gg.graph.AddSimpleEdge(4, 7, 2);

  auto result = Compress(gg.graph, gg.alphabet, TrackingOptions());
  ASSERT_TRUE(result.ok());
  // Pruning keeps only contributing rules; on this graph nothing pays
  // off enough to beat the input by much.
  EXPECT_GE(result.value().stats.output_size + 3,
            result.value().stats.input_size);
  CheckRoundTrip(gg, CompressOptions());
}

TEST(CompressorTest, StarCompressesWell) {
  // 1000-leaf star: the paper's RDF-types win case. The grammar must
  // be dramatically smaller than the input.
  GeneratedGraph gg;
  gg.name = "star";
  gg.alphabet.Add("t", 2);
  gg.graph = Hypergraph(1001);
  for (uint32_t i = 1; i <= 1000; ++i) gg.graph.AddSimpleEdge(i, 0, 0);

  auto result = Compress(gg.graph, gg.alphabet, TrackingOptions());
  ASSERT_TRUE(result.ok());
  const auto& stats = result.value().stats;
  EXPECT_LT(stats.output_size, stats.input_size / 3) << "star must compress";
  CheckRoundTrip(gg, CompressOptions());
}

TEST(CompressorTest, IdenticalCopiesCompressExponentially) {
  // Figure 13: disjoint copies of a 5-edge graph. With virtual edges
  // the grammar grows ~logarithmically in the copy count.
  GeneratedGraph unit = CycleWithDiagonal();
  auto g256 = DisjointCopies(unit, 256, "c256");
  auto g1024 = DisjointCopies(unit, 1024, "c1024");

  CompressOptions options;
  auto r256 = Compress(g256.graph, g256.alphabet, options);
  auto r1024 = Compress(g1024.graph, g1024.alphabet, options);
  ASSERT_TRUE(r256.ok());
  ASSERT_TRUE(r1024.ok());
  // 4x the input must cost far less than 4x the grammar.
  EXPECT_LT(r1024.value().stats.output_size,
            2 * r256.value().stats.output_size + 64);
  EXPECT_LT(r1024.value().stats.output_size,
            g1024.graph.TotalSize() / 10);
  CheckRoundTrip(g256, options);
}

TEST(CompressorTest, VirtualEdgesAblation) {
  GeneratedGraph unit = CycleWithDiagonal();
  auto copies = DisjointCopies(unit, 128, "c128");
  CompressOptions with, without;
  without.connect_components = false;
  auto r_with = Compress(copies.graph, copies.alphabet, with);
  auto r_without = Compress(copies.graph, copies.alphabet, without);
  ASSERT_TRUE(r_with.ok());
  ASSERT_TRUE(r_without.ok());
  // Virtual edges merge per-copy nonterminals across components.
  EXPECT_LT(r_with.value().stats.output_size,
            r_without.value().stats.output_size);
  EXPECT_GT(r_with.value().stats.virtual_edges_added, 0u);
  CheckRoundTrip(copies, without);
}

TEST(CompressorTest, EmptyAndTinyGraphs) {
  GeneratedGraph gg;
  gg.name = "empty";
  gg.alphabet.Add("a", 2);
  gg.graph = Hypergraph(0);
  CheckRoundTrip(gg, CompressOptions());

  gg.name = "edgeless";
  gg.graph = Hypergraph(5);
  CheckRoundTrip(gg, CompressOptions());

  gg.name = "one-edge";
  gg.graph = Hypergraph(5);
  gg.graph.AddSimpleEdge(0, 4, 0);
  CheckRoundTrip(gg, CompressOptions());
}

TEST(CompressorTest, RejectsInvalidInput) {
  Alphabet alpha;
  alpha.Add("a", 2);
  Hypergraph g(2);
  g.AddEdge(0, {0, 0});  // repeated attachment
  EXPECT_FALSE(Compress(g, alpha, CompressOptions()).ok());

  Hypergraph h(2);
  h.AddSimpleEdge(0, 1, 0);
  h.SetExternal({0});
  EXPECT_FALSE(Compress(h, alpha, CompressOptions()).ok());

  CompressOptions bad;
  bad.max_rank = 0;
  Hypergraph ok_graph(2);
  ok_graph.AddSimpleEdge(0, 1, 0);
  EXPECT_FALSE(Compress(ok_graph, alpha, bad).ok());
}

struct SweepParam {
  const char* dataset;
  NodeOrderKind order;
  int max_rank;
  bool prune;
  bool connect;
};

class CompressorSweep : public ::testing::TestWithParam<SweepParam> {};

GeneratedGraph MakeSweepGraph(const std::string& name) {
  if (name == "er") return ErdosRenyi(300, 900, 1, 3);
  if (name == "ba") return BarabasiAlbert(400, 3, 2);
  if (name == "coauth") return CoAuthorship(200, 300, 3);
  if (name == "rdf-types") return RdfTypes(500, 12, 4);
  if (name == "rdf-ent") return RdfEntities(120, 8, 10, 5);
  if (name == "hub") return HubNetwork(300, 1200, 10, 6);
  if (name == "games") return GamePositions(40, 8, 3, 5, 7);
  if (name == "dblp") return DblpVersions(4, 40, 25, 8, "dblp");
  ADD_FAILURE() << "unknown sweep dataset " << name;
  return GeneratedGraph();
}

TEST_P(CompressorSweep, RoundTripsExactly) {
  const SweepParam& p = GetParam();
  GeneratedGraph gg = MakeSweepGraph(p.dataset);
  CompressOptions options;
  options.node_order = p.order;
  options.max_rank = p.max_rank;
  options.prune = p.prune;
  options.connect_components = p.connect;
  CheckRoundTrip(gg, options);
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, CompressorSweep,
    ::testing::Values(
        SweepParam{"er", NodeOrderKind::kFp, 4, true, true},
        SweepParam{"er", NodeOrderKind::kNatural, 4, true, true},
        SweepParam{"er", NodeOrderKind::kRandom, 4, false, false},
        SweepParam{"ba", NodeOrderKind::kFp, 4, true, true},
        SweepParam{"ba", NodeOrderKind::kBfs, 2, true, true},
        SweepParam{"coauth", NodeOrderKind::kFp, 4, true, true},
        SweepParam{"coauth", NodeOrderKind::kFp0, 6, true, true},
        SweepParam{"rdf-types", NodeOrderKind::kFp, 4, true, true},
        SweepParam{"rdf-types", NodeOrderKind::kNatural, 2, true, false},
        SweepParam{"rdf-ent", NodeOrderKind::kFp, 4, true, true},
        SweepParam{"rdf-ent", NodeOrderKind::kDfs, 8, true, true},
        SweepParam{"hub", NodeOrderKind::kFp, 4, true, true},
        SweepParam{"hub", NodeOrderKind::kFp, 3, false, true},
        SweepParam{"games", NodeOrderKind::kFp, 4, true, true},
        SweepParam{"games", NodeOrderKind::kFp, 5, true, false},
        SweepParam{"dblp", NodeOrderKind::kFp, 4, true, true},
        SweepParam{"dblp", NodeOrderKind::kRandom, 4, true, true}),
    [](const auto& suite_info) {
      const SweepParam& p = suite_info.param;
      std::string name = std::string(p.dataset) + "_" +
                         NodeOrderKindName(p.order) + "_r" +
                         std::to_string(p.max_rank);
      if (!p.prune) name += "_noprune";
      if (!p.connect) name += "_novirt";
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(CompressorTest, ExtraRecountPassesStayCorrect) {
  GeneratedGraph gg = CoAuthorship(150, 250, 11);
  CompressOptions options;
  options.extra_recount_passes = 3;
  CheckRoundTrip(gg, options);
}

TEST(CompressorTest, StatsAreConsistent) {
  GeneratedGraph gg = RdfTypes(800, 10, 12);
  auto result = Compress(gg.graph, gg.alphabet, CompressOptions());
  ASSERT_TRUE(result.ok());
  const auto& stats = result.value().stats;
  EXPECT_EQ(stats.input_size, gg.graph.TotalSize());
  EXPECT_EQ(stats.output_size, result.value().grammar.TotalSize());
  EXPECT_GT(stats.digrams_replaced, 0u);
  EXPECT_GE(stats.occurrences_replaced, stats.digrams_replaced);
  EXPECT_EQ(stats.rules_after_prune, result.value().grammar.num_rules());
}

TEST(CompressorTest, MaxRankBoundsNonterminalRanks) {
  for (int max_rank : {1, 2, 3, 5}) {
    GeneratedGraph gg = ErdosRenyi(200, 700, 21, 2);
    CompressOptions options;
    options.max_rank = max_rank;
    auto result = Compress(gg.graph, gg.alphabet, options);
    ASSERT_TRUE(result.ok());
    auto stats = ComputeGrammarStats(result.value().grammar);
    EXPECT_LE(stats.max_nonterminal_rank, static_cast<uint32_t>(max_rank));
  }
}

}  // namespace
}  // namespace grepair
