// Differential proof that remote == local: an in-process
// serve::ShardServer on a loopback port must answer every query
// byte-identically to a local open of the same GRSHARD2 container —
// for every sharded inner codec, for single and batch entry points,
// at 1 and 8 client threads, over shared and per-thread connections,
// at pool sizes 1 and 4. Also pins the remote QueryStats counters,
// remote prefetch, remote Serialize, and the api::OpenRemote entry
// point. The sanitizer CI legs (ASan/UBSan and TSan) run this file:
// the concurrency tests double as the data-race net for the
// server/pool threading.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/api/grepair_api.h"
#include "src/serve/pool.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"

namespace grepair {
namespace {

// A served container: the serialized bytes plus the server exporting
// them. Member order matters — the server (declared last) is
// destroyed first, so it never outlives the bytes it serves
// (CorpusRegistry::AddBytes borrows; the caller keeps storage alive).
struct ServedContainer {
  std::vector<uint8_t> bytes;
  std::unique_ptr<serve::ShardServer> server;

  std::string host_port() const { return server->host_port(); }
};

std::vector<uint8_t> CompressSharded(const std::string& inner,
                                     const GeneratedGraph& gg, int shards) {
  auto codec = api::CodecRegistry::Create("sharded:" + inner).ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", std::to_string(shards));
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  EXPECT_TRUE(rep.ok()) << rep.status().ToString();
  return dynamic_cast<shard::ShardedRep*>(rep.value().get())->SerializeV2();
}

// Compresses `gg` with sharded:<inner> into a v2 container and serves
// it as the sole corpus "g" on an ephemeral loopback port.
ServedContainer ServeCompressed(const std::string& inner,
                                const GeneratedGraph& gg, int shards) {
  ServedContainer served;
  served.bytes = CompressSharded(inner, gg, shards);
  serve::CorpusRegistry registry;
  auto added = registry.AddBytes("g", SpanOf(served.bytes));
  EXPECT_TRUE(added.ok()) << added.ToString();
  auto server = serve::ShardServer::Start(std::move(registry));
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  served.server = std::move(server).ValueOrDie();
  return served;
}

template <typename T>
void ExpectSameResult(const Result<T>& local, const Result<T>& remote,
                      const std::string& what) {
  ASSERT_EQ(local.ok(), remote.ok())
      << what << ": local " << local.status().ToString() << " vs remote "
      << remote.status().ToString();
  if (local.ok()) {
    EXPECT_EQ(local.value(), remote.value()) << what;
  } else {
    EXPECT_EQ(local.status().code(), remote.status().code()) << what;
  }
}

TEST(RemoteShardTest, EveryShardedCodecAnswersIdenticallyRemoteVsLocal) {
  GeneratedGraph gg = BarabasiAlbert(90, 3, 17);
  for (const std::string& inner : api::CodecRegistry::BaseNames()) {
    SCOPED_TRACE("inner codec " + inner);
    ServedContainer served = ServeCompressed(inner, gg, 3);

    auto local = shard::ShardedRep::Deserialize(SpanOf(served.bytes));
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    auto remote = serve::OpenRemoteContainer(served.host_port());
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    EXPECT_EQ(remote.value()->num_nodes(), local.value()->num_nodes());

    // Single queries, every node, both directions.
    for (uint64_t v = 0; v < gg.graph.num_nodes(); ++v) {
      ExpectSameResult(local.value()->OutNeighbors(v),
                       remote.value()->OutNeighbors(v),
                       "out[" + std::to_string(v) + "]");
      ExpectSameResult(local.value()->InNeighbors(v),
                       remote.value()->InNeighbors(v),
                       "in[" + std::to_string(v) + "]");
    }
    // Reachability over a deterministic pair sample.
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    for (uint64_t i = 0; i < 12; ++i) {
      pairs.push_back({(i * 7) % gg.graph.num_nodes(),
                       (i * 13 + 5) % gg.graph.num_nodes()});
      ExpectSameResult(local.value()->Reachable(pairs.back().first,
                                                pairs.back().second),
                       remote.value()->Reachable(pairs.back().first,
                                                 pairs.back().second),
                       "reach " + std::to_string(i));
    }
    // Batch entry points.
    std::vector<uint64_t> all_nodes(gg.graph.num_nodes());
    for (uint64_t v = 0; v < all_nodes.size(); ++v) all_nodes[v] = v;
    ExpectSameResult(local.value()->OutNeighborsBatch(all_nodes),
                     remote.value()->OutNeighborsBatch(all_nodes),
                     "out batch");
    ExpectSameResult(local.value()->ReachableBatch(pairs),
                     remote.value()->ReachableBatch(pairs), "reach batch");

    // Full reconstruction agrees too.
    auto local_graph = local.value()->Decompress();
    auto remote_graph = remote.value()->Decompress();
    ASSERT_EQ(local_graph.ok(), remote_graph.ok());
    if (local_graph.ok()) {
      EXPECT_TRUE(local_graph.value().EqualUpToEdgeOrder(
          remote_graph.value()));
    }
  }
}

TEST(RemoteShardTest, RemoteSerializeMatchesLocalByteForByte) {
  GeneratedGraph gg = BarabasiAlbert(60, 3, 23);
  ServedContainer served = ServeCompressed("grepair", gg, 4);
  auto local = shard::ShardedRep::Deserialize(SpanOf(served.bytes));
  ASSERT_TRUE(local.ok());
  auto remote = serve::OpenRemoteContainer(served.host_port());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  // Remote Serialize fetches every payload across the wire and must
  // reproduce the byte-stable v1 form exactly.
  EXPECT_EQ(remote.value()->Serialize(), local.value()->Serialize());
  EXPECT_EQ(remote.value()->ByteSize(), local.value()->ByteSize());
}

TEST(RemoteShardTest, EightThreadsOnOnePoolMatchTruth) {
  GeneratedGraph gg = BarabasiAlbert(120, 3, 29);
  ServedContainer served = ServeCompressed("grepair", gg, 4);

  auto local = shard::ShardedRep::Deserialize(SpanOf(served.bytes));
  ASSERT_TRUE(local.ok());
  std::vector<std::vector<uint64_t>> truth(gg.graph.num_nodes());
  for (uint64_t v = 0; v < gg.graph.num_nodes(); ++v) {
    auto r = local.value()->OutNeighbors(v);
    ASSERT_TRUE(r.ok());
    truth[v] = r.value();
  }

  for (int pool_size : {1, 4}) {
    SCOPED_TRACE("pool size " + std::to_string(pool_size));
    serve::OpenOptions options;
    options.pool_size = pool_size;
    auto remote = serve::OpenRemoteContainer(served.host_port(), options);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    auto* sharded = dynamic_cast<shard::ShardedRep*>(remote.value().get());
    ASSERT_NE(sharded, nullptr);
    sharded->set_query_threads(4);

    std::vector<uint64_t> all_nodes(gg.graph.num_nodes());
    for (uint64_t v = 0; v < all_nodes.size(); ++v) all_nodes[v] = v;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        if (t % 2 == 0) {
          auto batch = remote.value()->OutNeighborsBatch(all_nodes);
          if (!batch.ok()) {
            ++failures;
            return;
          }
          for (uint64_t v = 0; v < all_nodes.size(); ++v) {
            if (batch.value()[v] != truth[v]) ++failures;
          }
        } else {
          for (uint64_t v = t; v < all_nodes.size(); v += 3) {
            auto r = remote.value()->OutNeighbors(v);
            if (!r.ok() || r.value() != truth[v]) ++failures;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0);
    // Concurrent faults still fetch each shard at most once.
    auto stats = remote.value()->query_stats();
    EXPECT_LE(stats.remote_fetches, sharded->num_shards());
    EXPECT_GT(stats.remote_bytes, 0u);
    EXPECT_GE(stats.pool_dials, 1u);
    EXPECT_EQ(stats.pool_redials, 0u);
  }
}

TEST(RemoteShardTest, EightIndependentClientsMatchTruth) {
  GeneratedGraph gg = BarabasiAlbert(80, 3, 31);
  ServedContainer served = ServeCompressed("grepair", gg, 3);

  auto local = shard::ShardedRep::Deserialize(SpanOf(served.bytes));
  ASSERT_TRUE(local.ok());
  std::vector<std::vector<uint64_t>> truth(gg.graph.num_nodes());
  for (uint64_t v = 0; v < gg.graph.num_nodes(); ++v) {
    auto r = local.value()->OutNeighbors(v);
    ASSERT_TRUE(r.ok());
    truth[v] = r.value();
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      serve::OpenOptions options;
      options.pool_size = 1;
      auto rep = serve::OpenRemoteContainer(served.host_port(), options);
      if (!rep.ok()) {
        ++failures;
        return;
      }
      for (uint64_t v = 0; v < truth.size(); ++v) {
        auto r = rep.value()->OutNeighbors(v);
        if (!r.ok() || r.value() != truth[v]) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(served.server->stats().connections, 8u);
}

TEST(RemoteShardTest, RemotePrefetchWarmsShardsOverTheWire) {
  GeneratedGraph gg = BarabasiAlbert(70, 3, 37);
  ServedContainer served = ServeCompressed("grepair", gg, 3);
  auto remote = serve::OpenRemoteContainer(served.host_port());
  ASSERT_TRUE(remote.ok());
  auto* sharded = dynamic_cast<shard::ShardedRep*>(remote.value().get());
  ASSERT_NE(sharded, nullptr);

  sharded->set_prefetch_threads(2);
  sharded->PrefetchAll();
  sharded->WaitForPrefetch();
  auto warm = remote.value()->query_stats();
  EXPECT_GT(warm.shard_faults, 0u);
  EXPECT_EQ(warm.remote_fetches, warm.shard_faults);

  // Everything resident: queries cross no more wire.
  for (uint64_t v = 0; v < gg.graph.num_nodes(); ++v) {
    ASSERT_TRUE(remote.value()->OutNeighbors(v).ok());
  }
  EXPECT_EQ(remote.value()->query_stats().remote_fetches,
            warm.remote_fetches);
  sharded->set_prefetch_threads(0);
}

TEST(RemoteShardTest, ApiOpenRemoteEntryPoint) {
  GeneratedGraph gg = BarabasiAlbert(50, 3, 41);
  ServedContainer served = ServeCompressed("grepair", gg, 2);
  // Both the bare "host:port" form (sole corpus) and the explicit
  // "host:port/name" form resolve.
  for (const std::string& target :
       {served.host_port(), served.host_port() + "/g"}) {
    SCOPED_TRACE("target " + target);
    auto rep = api::OpenRemote(target);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    auto out = rep.value()->OutNeighbors(0);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    auto local = shard::ShardedRep::Deserialize(SpanOf(served.bytes));
    ASSERT_TRUE(local.ok());
    auto local_out = local.value()->OutNeighbors(0);
    ASSERT_TRUE(local_out.ok());
    EXPECT_EQ(out.value(), local_out.value());
    // The remote rep names its source.
    auto* sharded = dynamic_cast<shard::ShardedRep*>(rep.value().get());
    ASSERT_NE(sharded, nullptr);
    EXPECT_STREQ(sharded->source_kind(), "remote");
    EXPECT_TRUE(sharded->is_lazy());
  }
}

TEST(RemoteShardTest, ServingRefusesV1AndNonShardedPayloads) {
  GeneratedGraph gg = BarabasiAlbert(40, 3, 43);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "2");
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(rep.ok());

  auto v1 = rep.value()->Serialize();  // GRSHARD1: no directory
  serve::CorpusRegistry registry;
  Status v1_added = registry.AddBytes("g", SpanOf(v1));
  ASSERT_FALSE(v1_added.ok());
  EXPECT_EQ(v1_added.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(v1_added.message().find("v2"), std::string::npos);

  std::vector<uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_FALSE(registry.AddBytes("bad", SpanOf(garbage)).ok());

  // A registry that ends up empty refuses to start serving.
  auto server = serve::ShardServer::Start(std::move(registry));
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);
}

TEST(RemoteShardTest, ConnectErrorsAreCleanStatuses) {
  // Malformed spec.
  auto bad_spec = api::OpenRemote("not-a-host-port");
  ASSERT_FALSE(bad_spec.ok());
  EXPECT_EQ(bad_spec.status().code(), StatusCode::kInvalidArgument);

  // A port that was just released: connection refused, not a hang —
  // and the failure names the unreachable peer.
  uint16_t dead_port = 0;
  {
    auto listener = Socket::ListenTcp("127.0.0.1", 0, &dead_port);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  }
  std::string peer = "127.0.0.1:" + std::to_string(dead_port);
  auto refused = api::OpenRemote(peer, /*io_timeout_ms=*/2000);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.status().message().find(peer), std::string::npos)
      << refused.status().ToString();
}

}  // namespace
}  // namespace grepair
