// Tests for deterministic derivation val(G) (Section II) and the
// original-ID mapping machinery, including the paper's Figure 1 and
// Figure 6/7 examples.

#include <gtest/gtest.h>

#include "src/grammar/derivation.h"

namespace grepair {
namespace {

Alphabet AbAlphabet() {
  Alphabet a;
  a.Add("a", 2);
  a.Add("b", 2);
  return a;
}

// Figure 1a: S is a triangle of three A-edges; A -> a-edge then b-edge
// through one internal node (source/target external).
SlhrGrammar Figure1Grammar() {
  SlhrGrammar g(AbAlphabet(), Hypergraph(3));
  Label a_nt = g.AddNonterminal(2, "A");
  Hypergraph rhs(3);
  rhs.AddSimpleEdge(0, 2, 0);  // a: source -> internal
  rhs.AddSimpleEdge(2, 1, 1);  // b: internal -> target
  rhs.SetExternal({0, 1});
  g.SetRule(a_nt, std::move(rhs));
  Hypergraph* s = g.mutable_start();
  s->AddEdge(a_nt, {0, 1});
  s->AddEdge(a_nt, {1, 2});
  s->AddEdge(a_nt, {2, 0});
  return g;
}

TEST(DerivationTest, Figure1FullDerivation) {
  SlhrGrammar g = Figure1Grammar();
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_EQ(ValNodeCount(g), 6u);
  EXPECT_EQ(ValEdgeCount(g), 6u);

  auto derived = Derive(g);
  ASSERT_TRUE(derived.ok());
  const Hypergraph& h = derived.value();
  EXPECT_EQ(h.num_nodes(), 6u);
  EXPECT_EQ(h.num_edges(), 6u);
  // Deterministic IDs: first application creates node 3 (between 0 and
  // 1), second node 4, third node 5; a-edges then b-edges alternate.
  Hypergraph expected(6);
  expected.AddSimpleEdge(0, 3, 0);
  expected.AddSimpleEdge(3, 1, 1);
  expected.AddSimpleEdge(1, 4, 0);
  expected.AddSimpleEdge(4, 2, 1);
  expected.AddSimpleEdge(2, 5, 0);
  expected.AddSimpleEdge(5, 0, 1);
  EXPECT_TRUE(h.EqualUpToEdgeOrder(expected));
}

// Figure 6/7: 9-node start graph with four A-edges; the derivation has
// 13 nodes, and |val(G)| - |G| = con(A) = 3.
TEST(DerivationTest, Figure7SizesMatchContribution) {
  Alphabet alpha;
  alpha.Add("a", 2);
  SlhrGrammar g(alpha, Hypergraph(9));
  Label a_nt = g.AddNonterminal(2, "A");
  Hypergraph rhs(3);
  rhs.AddSimpleEdge(0, 2, 0);
  rhs.AddSimpleEdge(2, 1, 0);
  rhs.SetExternal({0, 1});
  g.SetRule(a_nt, std::move(rhs));
  Hypergraph* s = g.mutable_start();
  s->AddSimpleEdge(0, 1, 0);
  s->AddEdge(a_nt, {1, 2});
  s->AddEdge(a_nt, {3, 4});
  s->AddEdge(a_nt, {5, 6});
  s->AddEdge(a_nt, {7, 8});
  ASSERT_TRUE(g.Validate().ok());

  auto derived = Derive(g);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(derived.value().num_nodes(), 13u);
  int64_t graph_size = static_cast<int64_t>(derived.value().TotalSize());
  int64_t grammar_size = static_cast<int64_t>(g.TotalSize());
  EXPECT_EQ(graph_size - grammar_size, g.Contribution(a_nt, 4));
}

TEST(DerivationTest, NestedDepthFirstIdAssignment) {
  // B -> A A (chained), A -> a a: depth-first expansion numbers the
  // first A's internal node before the second A's.
  SlhrGrammar g(AbAlphabet(), Hypergraph(2));
  Label a_nt = g.AddNonterminal(2, "A");
  {
    Hypergraph rhs(3);
    rhs.AddSimpleEdge(0, 2, 0);
    rhs.AddSimpleEdge(2, 1, 0);
    rhs.SetExternal({0, 1});
    g.SetRule(a_nt, std::move(rhs));
  }
  Label b_nt = g.AddNonterminal(2, "B");
  {
    Hypergraph rhs(3);
    rhs.AddEdge(a_nt, {0, 2});
    rhs.AddEdge(a_nt, {2, 1});
    rhs.SetExternal({0, 1});
    g.SetRule(b_nt, std::move(rhs));
  }
  g.mutable_start()->AddEdge(b_nt, {0, 1});
  ASSERT_TRUE(g.Validate().ok());

  auto derived = Derive(g);
  ASSERT_TRUE(derived.ok());
  // Nodes: 0,1 start; 2 = B's internal; 3 = first A's internal;
  // 4 = second A's internal. Path 0 ->3 ->2 ->4 ->1.
  Hypergraph expected(5);
  expected.AddSimpleEdge(0, 3, 0);
  expected.AddSimpleEdge(3, 2, 0);
  expected.AddSimpleEdge(2, 4, 0);
  expected.AddSimpleEdge(4, 1, 0);
  EXPECT_TRUE(derived.value().EqualUpToEdgeOrder(expected));
}

TEST(DerivationTest, GeneratedSizes) {
  SlhrGrammar g = Figure1Grammar();
  auto sizes = ComputeGeneratedSizes(g);
  ASSERT_EQ(sizes.gen_nodes.size(), 1u);
  EXPECT_EQ(sizes.gen_nodes[0], 1u);
  EXPECT_EQ(sizes.gen_edges[0], 2u);
}

TEST(DerivationTest, MaterializationLimit) {
  SlhrGrammar g = Figure1Grammar();
  DeriveOptions opts;
  opts.max_nodes = 5;  // val has 6 nodes
  auto derived = Derive(g, opts);
  EXPECT_FALSE(derived.ok());
  EXPECT_EQ(derived.status().code(), StatusCode::kOutOfRange);
}

TEST(DerivationTest, MappingRoundTrip) {
  // Attach records stating which original node each internal stands
  // for; DeriveOriginal must reproduce those IDs.
  SlhrGrammar g = Figure1Grammar();
  NodeMapping mapping;
  mapping.start_origs = {2, 0, 4};   // start nodes map to originals 2,0,4
  mapping.edge_records.resize(3);
  mapping.edge_records[0].internal_origs = {1};
  mapping.edge_records[1].internal_origs = {3};
  mapping.edge_records[2].internal_origs = {5};
  ASSERT_TRUE(ValidateMapping(g, mapping).ok());

  auto derived = DeriveWithMapping(g, mapping);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(derived.value().origins,
            (std::vector<NodeId>{2, 0, 4, 1, 3, 5}));

  auto original = DeriveOriginal(g, mapping);
  ASSERT_TRUE(original.ok());
  Hypergraph expected(6);
  expected.AddSimpleEdge(2, 1, 0);
  expected.AddSimpleEdge(1, 0, 1);
  expected.AddSimpleEdge(0, 3, 0);
  expected.AddSimpleEdge(3, 4, 1);
  expected.AddSimpleEdge(4, 5, 0);
  expected.AddSimpleEdge(5, 2, 1);
  EXPECT_TRUE(original.value().EqualUpToEdgeOrder(expected));
}

TEST(DerivationTest, MappingValidationCatchesArityErrors) {
  SlhrGrammar g = Figure1Grammar();
  NodeMapping mapping;
  mapping.start_origs = {0, 1, 2};
  mapping.edge_records.resize(3);
  mapping.edge_records[0].internal_origs = {3, 4};  // rule has 1 internal
  mapping.edge_records[1].internal_origs = {5};
  mapping.edge_records[2].internal_origs = {6};
  EXPECT_FALSE(ValidateMapping(g, mapping).ok());
}

TEST(DerivationTest, NonPermutationMappingRejected) {
  SlhrGrammar g = Figure1Grammar();
  NodeMapping mapping;
  mapping.start_origs = {0, 0, 2};  // duplicate original id
  mapping.edge_records.resize(3);
  mapping.edge_records[0].internal_origs = {3};
  mapping.edge_records[1].internal_origs = {4};
  mapping.edge_records[2].internal_origs = {5};
  auto res = DeriveOriginal(g, mapping);
  EXPECT_FALSE(res.ok());
}

TEST(DerivationTest, TerminalOnlyGrammar) {
  Alphabet alpha = AbAlphabet();
  Hypergraph s(3);
  s.AddSimpleEdge(0, 1, 0);
  s.AddSimpleEdge(1, 2, 1);
  SlhrGrammar g(alpha, s);
  auto derived = Derive(g);
  ASSERT_TRUE(derived.ok());
  EXPECT_TRUE(derived.value().EqualUpToEdgeOrder(g.start()));
  EXPECT_EQ(g.Height(), 0u);
}

}  // namespace
}  // namespace grepair
