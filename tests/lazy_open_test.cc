// Lazy-open semantics of the zero-copy storage layer: a GRSHARD2
// container opened via mmap (or from memory) materializes exactly the
// shards queries touch, evicted shards re-fault byte-identically,
// payload corruption fails closed at fault time, and concurrent
// queriers/prefetchers on one mapping are race-free (the TSan CI leg
// runs this file). Also covers MmapFile's error surface and the
// api-level Open entry points.

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "src/api/grepair_api.h"
#include "src/util/mmap_file.h"

namespace grepair {
namespace {

// Two disjoint directed 4-cliques over nodes {0..3} and {4..7}, edges
// emitted clique-by-clique so an edge-range split into 2 shards puts
// each clique in exactly one shard (shard 0 owns {0..3}, shard 1 owns
// {4..7}, cut shard empty) — which is what lets the tests pin "one
// query faults exactly one shard".
Hypergraph TwoCliqueGraph() {
  Hypergraph g(8);
  for (NodeId base : {NodeId{0}, NodeId{4}}) {
    for (NodeId u = 0; u < 4; ++u) {
      for (NodeId v = 0; v < 4; ++v) {
        if (u != v) g.AddSimpleEdge(base + u, base + v, 0);
      }
    }
  }
  return g;
}

Alphabet OneLabel() {
  Alphabet a;
  a.Add("e", 2);
  return a;
}

// A sharded:grepair rep of the two-clique fixture (2 data shards).
std::unique_ptr<api::CompressedRep> CompressTwoClique() {
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "2");
  options.Set("threads", "1");
  auto rep = codec->Compress(TwoCliqueGraph(), OneLabel(), options);
  EXPECT_TRUE(rep.ok()) << rep.status().ToString();
  return std::move(rep).ValueOrDie();
}

shard::ShardedRep* AsSharded(api::CompressedRep* rep) {
  auto* sharded = dynamic_cast<shard::ShardedRep*>(rep);
  EXPECT_NE(sharded, nullptr);
  return sharded;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "grepair_lazy_" +
         std::to_string(::getpid()) + "_" + name;
}

TEST(LazyOpenTest, QueryingOneNodeFaultsExactlyOneShard) {
  auto eager = CompressTwoClique();
  auto v2 = AsSharded(eager.get())->SerializeV2();

  auto rep = shard::ShardedRep::Deserialize(v2);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  ASSERT_TRUE(rep.value()->is_lazy());
  EXPECT_EQ(rep.value()->query_stats().shard_faults, 0u);

  // Node 0 lives only in shard 0: exactly one fault.
  auto out = rep.value()->OutNeighbors(0);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value(), std::vector<uint64_t>({1, 2, 3}));
  EXPECT_EQ(rep.value()->query_stats().shard_faults, 1u);

  // More queries inside the same clique: still one fault.
  for (uint64_t v : {1, 2, 3}) {
    ASSERT_TRUE(rep.value()->OutNeighbors(v).ok());
  }
  EXPECT_EQ(rep.value()->query_stats().shard_faults, 1u);

  // Crossing into the other clique faults the second shard.
  auto out4 = rep.value()->OutNeighbors(4);
  ASSERT_TRUE(out4.ok());
  EXPECT_EQ(out4.value(), std::vector<uint64_t>({5, 6, 7}));
  EXPECT_EQ(rep.value()->query_stats().shard_faults, 2u);
}

TEST(LazyOpenTest, MmapOpenFaultsLazilyThroughTheCodecApi) {
  auto eager = CompressTwoClique();
  auto wrapped = api::WrapCodecPayload("sharded:grepair",
                                       AsSharded(eager.get())->SerializeV2());
  std::string path = TempPath("open.bin");
  ASSERT_TRUE(WriteFileBytes(path, wrapped).ok());

  std::string backend;
  auto rep = api::OpenCompressedFile(path, &backend);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(backend, "sharded:grepair");
  auto* sharded = AsSharded(rep.value().get());
  ASSERT_TRUE(sharded->is_lazy());

  auto out = rep.value()->OutNeighbors(5);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), std::vector<uint64_t>({4, 6, 7}));
  EXPECT_EQ(rep.value()->query_stats().shard_faults, 1u);

  // GraphCodec::Open enforces the frame's backend tag.
  auto wrong = api::CodecRegistry::Create("sharded:k2").ValueOrDie();
  auto mismatch = wrong->Open(path);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);

  // The right codec's Open works and stays lazy.
  auto right = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  auto reopened = right->Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->query_stats().shard_faults, 0u);
  std::remove(path.c_str());
}

TEST(LazyOpenTest, V1AndV2AnswersAndSerializationAgree) {
  GeneratedGraph gg = BarabasiAlbert(80, 3, 7);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "3");
  auto eager = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(eager.ok());
  auto* eager_sharded = AsSharded(eager.value().get());

  auto lazy = shard::ShardedRep::Deserialize(eager_sharded->SerializeV2());
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();

  // Serialize() of the lazy rep is the byte-stable v1 form — without
  // faulting a single shard.
  EXPECT_EQ(lazy.value()->Serialize(), eager_sharded->Serialize());
  EXPECT_EQ(lazy.value()->query_stats().shard_faults, 0u);
  EXPECT_EQ(lazy.value()->ByteSize(), eager_sharded->ByteSize());

  for (uint64_t v = 0; v < gg.graph.num_nodes(); ++v) {
    auto a = eager.value()->OutNeighbors(v);
    auto b = lazy.value()->OutNeighbors(v);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value(), b.value()) << "node " << v;
    auto ai = eager.value()->InNeighbors(v);
    auto bi = lazy.value()->InNeighbors(v);
    ASSERT_TRUE(ai.ok() && bi.ok());
    EXPECT_EQ(ai.value(), bi.value()) << "node " << v;
  }
  auto ga = eager.value()->Decompress();
  auto gb = lazy.value()->Decompress();
  ASSERT_TRUE(ga.ok() && gb.ok());
  EXPECT_TRUE(ga.value().EqualUpToEdgeOrder(gb.value()));
}

TEST(LazyOpenTest, EvictionThenRefaultIsByteIdentical) {
  auto eager = CompressTwoClique();
  auto rep = shard::ShardedRep::Deserialize(
      AsSharded(eager.get())->SerializeV2());
  ASSERT_TRUE(rep.ok());

  // Ground truth from the eager rep with caching disabled.
  std::vector<std::vector<uint64_t>> truth(8);
  for (uint64_t v = 0; v < 8; ++v) {
    auto r = eager->OutNeighbors(v);
    ASSERT_TRUE(r.ok());
    truth[v] = r.value();
  }

  // A tiny budget forces decoded-neighborhood evictions between
  // queries; every re-fault must reproduce the same answers.
  rep.value()->set_query_cache_bytes(700);
  for (int round = 0; round < 4; ++round) {
    for (uint64_t v = 0; v < 8; ++v) {
      auto r = rep.value()->OutNeighbors(v);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r.value(), truth[v]) << "round " << round << " node " << v;
    }
  }
  // With a 700-byte budget the two clique shards cannot both stay
  // resident once promoted, so the sweep above must have evicted.
  auto stats = rep.value()->query_stats();
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_GT(stats.shard_decodes, 1u);
}

TEST(LazyOpenTest, PayloadCorruptionFailsClosedAtFaultTime) {
  auto eager = CompressTwoClique();
  auto v2 = AsSharded(eager.get())->SerializeV2();
  auto info = shard::ShardedRep::Inspect(SpanOf(v2));
  ASSERT_TRUE(info.ok());
  // Corrupt one byte inside shard 0's payload: the open (directory
  // only) must still succeed, the first touch of shard 0 must fail
  // with a checksum error, and shard 1 must stay fully queryable.
  v2[info.value().shards[0].offset] ^= 0x01;
  auto rep = shard::ShardedRep::Deserialize(v2);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto bad = rep.value()->OutNeighbors(0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  EXPECT_NE(bad.status().message().find("checksum"), std::string::npos)
      << bad.status().ToString();
  auto good = rep.value()->OutNeighbors(4);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good.value(), std::vector<uint64_t>({5, 6, 7}));
  EXPECT_FALSE(rep.value()->Decompress().ok());
}

TEST(LazyOpenTest, PrefetchWarmsShardsAheadOfQueries) {
  auto eager = CompressTwoClique();
  auto rep = shard::ShardedRep::Deserialize(
      AsSharded(eager.get())->SerializeV2());
  ASSERT_TRUE(rep.ok());

  rep.value()->set_prefetch_threads(2);
  rep.value()->PrefetchAll();
  rep.value()->WaitForPrefetch();
  auto stats = rep.value()->query_stats();
  EXPECT_EQ(stats.shard_faults, 2u);       // both data shards warmed
  EXPECT_EQ(stats.shards_prefetched, 2u);  // ...by the pool

  // Queries find everything resident: no further faults.
  for (uint64_t v = 0; v < 8; ++v) {
    ASSERT_TRUE(rep.value()->OutNeighbors(v).ok());
  }
  EXPECT_EQ(rep.value()->query_stats().shard_faults, 2u);
  rep.value()->set_prefetch_threads(0);  // clean shutdown while warm
}

TEST(LazyOpenTest, PrefetchOverMmapHintsReadaheadBytes) {
  auto eager = CompressTwoClique();
  auto wrapped = api::WrapCodecPayload("sharded:grepair",
                                       AsSharded(eager.get())->SerializeV2());
  std::string path = TempPath("hints.bin");
  ASSERT_TRUE(WriteFileBytes(path, wrapped).ok());

  auto file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok());
  bool mapped = file.value()->is_mapped();

  auto rep = api::OpenCompressedFile(path);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto* sharded = AsSharded(rep.value().get());
  EXPECT_STREQ(sharded->source_kind(), mapped ? "local-mmap" : "local-heap");

  // Prefetch routes a WILLNEED hint through the source before each
  // fault; Decompress advises the whole mapping SEQUENTIAL. On the
  // (rare) heap fallback both are no-ops and the counter stays 0.
  sharded->PrefetchAll();
  ASSERT_TRUE(rep.value()->Decompress().ok());
  auto stats = rep.value()->query_stats();
  if (mapped) {
    EXPECT_GT(stats.bytes_hinted, 0u);
  } else {
    EXPECT_EQ(stats.bytes_hinted, 0u);
  }
  // Answers are unaffected by hinting.
  auto out = rep.value()->OutNeighbors(0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), std::vector<uint64_t>({1, 2, 3}));
  std::remove(path.c_str());
}

TEST(LazyOpenTest, ConcurrentQueriersAndPrefetchersAreRaceFree) {
  GeneratedGraph gg = BarabasiAlbert(120, 3, 11);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "4");
  auto eager = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(eager.ok());
  auto* eager_sharded = AsSharded(eager.value().get());

  std::vector<std::vector<uint64_t>> truth(gg.graph.num_nodes());
  for (uint64_t v = 0; v < gg.graph.num_nodes(); ++v) {
    auto r = eager.value()->OutNeighbors(v);
    ASSERT_TRUE(r.ok());
    truth[v] = r.value();
  }

  auto lazy = shard::ShardedRep::Deserialize(eager_sharded->SerializeV2());
  ASSERT_TRUE(lazy.ok());
  lazy.value()->set_query_threads(4);
  lazy.value()->set_prefetch_threads(2);

  // 8 threads race single queries, batches and prefetches over one
  // cold mapping; every shard fault is contended.
  std::vector<uint64_t> all_nodes(gg.graph.num_nodes());
  for (uint64_t v = 0; v < all_nodes.size(); ++v) all_nodes[v] = v;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      if (t == 0) lazy.value()->PrefetchAll();
      if (t % 2 == 0) {
        auto batch = lazy.value()->OutNeighborsBatch(all_nodes);
        if (!batch.ok()) {
          ++failures;
          return;
        }
        for (uint64_t v = 0; v < all_nodes.size(); ++v) {
          if (batch.value()[v] != truth[v]) ++failures;
        }
      } else {
        for (uint64_t v = t; v < all_nodes.size(); v += 3) {
          auto r = lazy.value()->OutNeighbors(v);
          if (!r.ok() || r.value() != truth[v]) ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Each shard faulted at most once no matter how many threads raced.
  auto stats = lazy.value()->query_stats();
  EXPECT_LE(stats.shard_faults, lazy.value()->num_shards());
}

TEST(MmapFileTest, ErrorsNameThePath) {
  auto missing = MmapFile::Open("/nonexistent/grepair-no-such-file");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("grepair-no-such-file"),
            std::string::npos);

  std::string path = TempPath("bytes.bin");
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(WriteFileBytes(path, payload).ok());
  auto file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file.value()->span().ToVector(), payload);
  EXPECT_EQ(file.value()->path(), path);

  // Empty files open cleanly with an empty span.
  ASSERT_TRUE(WriteFileBytes(path, {}).ok());
  auto empty = MmapFile::Open(path);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value()->size(), 0u);
  std::remove(path.c_str());

  auto bad_read = ReadFileBytes("/nonexistent/grepair-no-such-file");
  ASSERT_FALSE(bad_read.ok());
  EXPECT_EQ(bad_read.status().code(), StatusCode::kNotFound);
}

TEST(OpenCompressedFileTest, RejectsNonContainersWithCleanStatus) {
  std::string path = TempPath("raw.bin");
  ASSERT_TRUE(WriteFileBytes(path, {0x01, 0x02, 0x03}).ok());
  auto rep = api::OpenCompressedFile(path);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rep.status().message().find(path), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace grepair
