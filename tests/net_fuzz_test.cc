// Bounded-budget fuzzing of the two parsers a hostile network peer
// can reach: the GRNF wire-frame parser and the GRSHARD2 directory
// parser (the bytes a shard server ships at connect time). Seeds come
// from golden-path encodings of real frames and containers (in the
// style of tests/fuzz_roundtrip_test.cc); each iteration mutates a
// seed (bit flips, truncations, extensions, splices) and asserts the
// parsers either succeed or fail with a clean, non-empty Status —
// never crash, hang, or over-read (the ASan/UBSan CI leg is the
// memory-safety oracle). Budgets are fixed and small enough for ctest.

#include <gtest/gtest.h>

#include "src/api/grepair_api.h"
#include "src/net/frame.h"
#include "src/serve/stats.h"
#include "src/util/rng.h"

namespace grepair {
namespace {

// Deterministic mutation: 1-8 havoc steps over a copy of `seed`.
std::vector<uint8_t> Mutate(const std::vector<uint8_t>& seed, Rng* rng) {
  std::vector<uint8_t> bytes = seed;
  int steps = 1 + static_cast<int>(rng->UniformBounded(8));
  for (int s = 0; s < steps; ++s) {
    switch (rng->UniformBounded(4)) {
      case 0:  // bit flip
        if (!bytes.empty()) {
          size_t i = rng->UniformBounded(bytes.size());
          bytes[i] ^= static_cast<uint8_t>(1u << rng->UniformBounded(8));
        }
        break;
      case 1:  // truncate
        if (!bytes.empty()) {
          bytes.resize(rng->UniformBounded(bytes.size()));
        }
        break;
      case 2: {  // extend with noise
        size_t n = 1 + rng->UniformBounded(16);
        for (size_t i = 0; i < n; ++i) {
          bytes.push_back(static_cast<uint8_t>(rng->UniformBounded(256)));
        }
        break;
      }
      default:  // overwrite a run
        if (!bytes.empty()) {
          size_t at = rng->UniformBounded(bytes.size());
          size_t n = 1 + rng->UniformBounded(8);
          for (size_t i = at; i < bytes.size() && i < at + n; ++i) {
            bytes[i] = static_cast<uint8_t>(rng->UniformBounded(256));
          }
        }
        break;
    }
  }
  return bytes;
}

// Every parse outcome must be clean: ok, or a non-empty corruption
// message. (Crashes/overreads are caught by the sanitizer legs.)
void CheckFrameParse(ByteSpan bytes) {
  size_t consumed = 0;
  auto frame = net::DecodeFrame(bytes, &consumed);
  if (frame.ok()) {
    EXPECT_LE(consumed, bytes.size);
    EXPECT_GE(frame.value().type, net::kGetDir);
    EXPECT_LE(frame.value().type, net::kError2);
    // The version byte always agrees with the type (a mismatch is
    // rejected as corruption), and a decoded frame re-encodes to the
    // exact bytes it came from.
    EXPECT_EQ(frame.value().version,
              net::FrameVersionForType(frame.value().type));
    auto reencoded = net::EncodeFrameWithVersion(
        frame.value().version, frame.value().type,
        SpanOf(frame.value().body));
    EXPECT_EQ(reencoded,
              std::vector<uint8_t>(bytes.data, bytes.data + consumed));
  } else {
    EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
    EXPECT_FALSE(frame.status().message().empty());
  }
}

// One golden frame per verb of both protocol generations, plus
// empty-body edges.
std::vector<std::vector<uint8_t>> GoldenFrameSeeds() {
  std::vector<uint8_t> payload(300);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7);
  }
  std::vector<uint8_t> hello;
  PutU32LE(net::kProtoV2, &hello);
  std::vector<uint8_t> hello_ok = hello;
  PutU32LE(3, &hello_ok);
  std::vector<uint8_t> open_corpus;
  PutU64LE(42, &open_corpus);
  open_corpus.push_back(3);
  open_corpus.insert(open_corpus.end(), {'w', 'e', 'b'});
  std::vector<uint8_t> corpus_dir;
  PutU64LE(42, &corpus_dir);
  PutU32LE(1, &corpus_dir);
  PutU64LE(128, &corpus_dir);
  corpus_dir.insert(corpus_dir.end(), payload.begin(), payload.end());
  std::vector<uint8_t> get_shard2;
  PutU64LE(43, &get_shard2);
  PutU32LE(1, &get_shard2);
  PutU32LE(2, &get_shard2);
  std::vector<uint8_t> shard2 = get_shard2;
  shard2.insert(shard2.end(), payload.begin(), payload.end());
  std::vector<uint8_t> get_stats;
  PutU64LE(44, &get_stats);
  return {
      net::EncodeFrame(net::kGetDir, ByteSpan{}),
      net::EncodeFrame(net::kGetShard, ByteSpan(payload.data(), 4)),
      net::EncodeFrame(net::kDir, SpanOf(payload)),
      net::EncodeFrame(net::kShard, SpanOf(payload)),
      net::EncodeFrame(net::kError,
                       SpanOf(net::EncodeErrorBody(
                           Status::InvalidArgument("seed error")))),
      net::EncodeFrame(net::kHello, SpanOf(hello)),
      net::EncodeFrame(net::kHelloOk, SpanOf(hello_ok)),
      net::EncodeFrame(net::kOpenCorpus, SpanOf(open_corpus)),
      net::EncodeFrame(net::kCorpusDir, SpanOf(corpus_dir)),
      net::EncodeFrame(net::kGetShard2, SpanOf(get_shard2)),
      net::EncodeFrame(net::kShard2, SpanOf(shard2)),
      net::EncodeFrame(net::kGetStats, SpanOf(get_stats)),
      net::EncodeFrame(net::kError2,
                       SpanOf(net::EncodeErrorBody2(
                           99, Status::NotFound("seed error 2")))),
  };
}

TEST(NetFuzzTest, FrameParserSurvivesMutation) {
  std::vector<std::vector<uint8_t>> seeds = GoldenFrameSeeds();
  // Golden path first: every seed decodes to itself.
  for (const auto& seed : seeds) {
    size_t consumed = 0;
    auto frame = net::DecodeFrame(SpanOf(seed), &consumed);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(consumed, seed.size());
  }
  Rng rng(0xFEEDF00D);
  for (int iter = 0; iter < 3000; ++iter) {
    const auto& seed = seeds[rng.UniformBounded(seeds.size())];
    auto mutated = Mutate(seed, &rng);
    CheckFrameParse(SpanOf(mutated));
  }
  // Pure noise, including the empty buffer.
  for (int iter = 0; iter < 1000; ++iter) {
    std::vector<uint8_t> noise(rng.UniformBounded(64));
    for (auto& b : noise) {
      b = static_cast<uint8_t>(rng.UniformBounded(256));
    }
    CheckFrameParse(SpanOf(noise));
  }
}

TEST(NetFuzzTest, VersionTypeMismatchIsRejected) {
  // Every type is legal in exactly one protocol version; a frame
  // claiming the other version is corruption even with a valid
  // checksum (a conforming peer never sends it).
  for (uint8_t type = net::kGetDir; type <= net::kError2; ++type) {
    uint8_t right = net::FrameVersionForType(type);
    uint8_t wrong = right == net::kProtoV1 ? net::kProtoV2 : net::kProtoV1;
    auto bytes = net::EncodeFrameWithVersion(wrong, type, ByteSpan{});
    auto frame = net::DecodeFrame(SpanOf(bytes));
    ASSERT_FALSE(frame.ok()) << "type " << int(type);
    EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
  }
}

TEST(NetFuzzTest, ErrorBodyDecodersSurviveNoise) {
  Rng rng(0xABCD1234);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> body(rng.UniformBounded(48));
    for (auto& b : body) {
      b = static_cast<uint8_t>(rng.UniformBounded(256));
    }
    Status decoded = net::DecodeErrorBody(SpanOf(body));
    EXPECT_FALSE(decoded.ok());  // an error frame is never OK
    EXPECT_FALSE(decoded.message().empty());
    uint64_t req_id = 0;
    Status decoded2 = net::DecodeErrorBody2(SpanOf(body), &req_id);
    EXPECT_FALSE(decoded2.ok());
    EXPECT_FALSE(decoded2.message().empty());
  }
}

TEST(NetFuzzTest, StatsBodyDecoderSurvivesMutation) {
  // Golden stats body: two corpora with histograms.
  serve::ServerStatsSnapshot snapshot;
  snapshot.connections = 3;
  snapshot.requests = 17;
  snapshot.bytes_sent = 4096;
  snapshot.errors = 1;
  snapshot.corpora.resize(2);
  snapshot.corpora[0].name = "web";
  snapshot.corpora[0].inner_name = "grepair";
  snapshot.corpora[0].num_nodes = 1000;
  snapshot.corpora[0].requests = 12;
  snapshot.corpora[0].shard_hits = {4, 0, 8};
  snapshot.corpora[1].name = "cite";
  snapshot.corpora[1].inner_name = "k2";
  snapshot.corpora[1].num_nodes = 50;
  snapshot.corpora[1].requests = 5;
  snapshot.corpora[1].shard_hits = {5};
  auto body = serve::EncodeStatsBody(9, snapshot);

  // Golden round-trip.
  uint64_t req_id = 0;
  auto decoded = serve::DecodeStatsBody(SpanOf(body), &req_id);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(req_id, 9u);
  ASSERT_EQ(decoded.value().corpora.size(), 2u);
  EXPECT_EQ(decoded.value().corpora[0].name, "web");
  EXPECT_EQ(decoded.value().corpora[1].shard_hits,
            (std::vector<uint64_t>{5}));

  Rng rng(0x57A75BAD);
  for (int iter = 0; iter < 2000; ++iter) {
    auto mutated = Mutate(body, &rng);
    auto parsed = serve::DecodeStatsBody(SpanOf(mutated), nullptr);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
  // Pure noise.
  for (int iter = 0; iter < 1000; ++iter) {
    std::vector<uint8_t> noise(rng.UniformBounded(96));
    for (auto& b : noise) {
      b = static_cast<uint8_t>(rng.UniformBounded(256));
    }
    auto parsed = serve::DecodeStatsBody(SpanOf(noise), nullptr);
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
}

// A small real container whose directory region seeds the fuzzer.
std::vector<uint8_t> GoldenContainer() {
  GeneratedGraph gg = BarabasiAlbert(50, 3, 61);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "3");
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  EXPECT_TRUE(rep.ok()) << rep.status().ToString();
  return dynamic_cast<shard::ShardedRep*>(rep.value().get())->SerializeV2();
}

void CheckDirectoryParse(ByteSpan dir, uint64_t dir_off) {
  auto parsed = shard::ParseV2Directory(dir, dir_off);
  if (!parsed.ok()) {
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
    EXPECT_FALSE(parsed.status().message().empty());
    return;
  }
  // A successful parse must uphold the invariants queries rely on.
  const shard::ParsedDirectory& d = parsed.value();
  ASSERT_EQ(d.rows.size(), d.node_maps.size());
  for (size_t i = 0; i < d.rows.size(); ++i) {
    EXPECT_EQ(d.rows[i].node_count, d.node_maps[i].size());
    for (size_t k = 0; k < d.node_maps[i].size(); ++k) {
      EXPECT_LT(d.node_maps[i][k], d.num_nodes);
      if (k > 0) EXPECT_LT(d.node_maps[i][k - 1], d.node_maps[i][k]);
    }
    if (d.rows[i].length > 0) {
      EXPECT_GE(d.rows[i].offset, 8u);
      EXPECT_LE(d.rows[i].offset + d.rows[i].length, dir_off);
    }
  }
}

TEST(NetFuzzTest, DirectoryParserSurvivesMutation) {
  auto container = GoldenContainer();
  uint64_t dir_off = 0;
  auto region = shard::LocateV2DirectoryRegion(SpanOf(container), &dir_off);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  std::vector<uint8_t> dir(region.value().begin(), region.value().end());

  // Golden path parses.
  CheckDirectoryParse(SpanOf(dir), dir_off);
  ASSERT_TRUE(shard::ParseV2Directory(SpanOf(dir), dir_off).ok());

  // Exhaustive single-bit-flip sweep over the whole directory: what a
  // one-bit lie from a server (past the frame checksum) could look
  // like.
  for (size_t i = 0; i < dir.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = dir;
      flipped[i] ^= static_cast<uint8_t>(1u << bit);
      CheckDirectoryParse(SpanOf(flipped), dir_off);
    }
  }
  // Every truncation length.
  for (size_t len = 0; len < dir.size(); ++len) {
    CheckDirectoryParse(ByteSpan(dir.data(), len), dir_off);
  }
  // Havoc mutations, including a lying dir_off.
  Rng rng(0x600DD1E5);
  for (int iter = 0; iter < 2000; ++iter) {
    auto mutated = Mutate(dir, &rng);
    uint64_t off = rng.Bernoulli(0.5)
                       ? dir_off
                       : rng.UniformBounded(2 * container.size() + 1);
    CheckDirectoryParse(SpanOf(mutated), off);
  }
}

TEST(NetFuzzTest, WholeContainerMutationStaysFailClosed) {
  auto container = GoldenContainer();
  Rng rng(0xC0FFEE11);
  for (int iter = 0; iter < 800; ++iter) {
    auto mutated = Mutate(container, &rng);
    // The full open path: locate + checksum + parse. Either a clean
    // failure or a container consistent enough to open (payload
    // corruption is then caught at fault time by the shard checksums,
    // pinned by lazy_open_test).
    auto rep = shard::ShardedRep::Deserialize(SpanOf(mutated));
    if (!rep.ok()) {
      EXPECT_FALSE(rep.status().message().empty());
    }
  }
}

}  // namespace
}  // namespace grepair
