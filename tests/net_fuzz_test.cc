// Bounded-budget fuzzing of the parsers a hostile network peer can
// reach: the GRNF wire-frame parser and the GRSHARD2 directory parser
// (the bytes a shard server ships at connect time), plus the
// bit-stream/Elias decode differential. The invariant checks and the
// golden seeds are shared with the coverage-guided libFuzzer targets
// (fuzz/fuzz_checks.h, fuzz/golden_seeds.h), so this always-on ctest
// battery and the long-running fuzzers can never drift apart; each
// iteration mutates a seed (bit flips, truncations, extensions,
// splices) and asserts the shared invariants — parsers either succeed
// or fail with a clean, non-empty Status, never crash, hang, or
// over-read (the ASan/UBSan CI leg is the memory-safety oracle).
// Budgets are fixed and small enough for ctest.

#include <gtest/gtest.h>

#include "fuzz/fuzz_checks.h"
#include "fuzz/golden_seeds.h"
#include "src/api/grepair_api.h"
#include "src/net/frame.h"
#include "src/serve/stats.h"
#include "src/util/rng.h"

namespace grepair {
namespace {

// Deterministic mutation: 1-8 havoc steps over a copy of `seed`.
std::vector<uint8_t> Mutate(const std::vector<uint8_t>& seed, Rng* rng) {
  std::vector<uint8_t> bytes = seed;
  int steps = 1 + static_cast<int>(rng->UniformBounded(8));
  for (int s = 0; s < steps; ++s) {
    switch (rng->UniformBounded(4)) {
      case 0:  // bit flip
        if (!bytes.empty()) {
          size_t i = rng->UniformBounded(bytes.size());
          bytes[i] ^= static_cast<uint8_t>(1u << rng->UniformBounded(8));
        }
        break;
      case 1:  // truncate
        if (!bytes.empty()) {
          bytes.resize(rng->UniformBounded(bytes.size()));
        }
        break;
      case 2: {  // extend with noise
        size_t n = 1 + rng->UniformBounded(16);
        for (size_t i = 0; i < n; ++i) {
          bytes.push_back(static_cast<uint8_t>(rng->UniformBounded(256)));
        }
        break;
      }
      default:  // overwrite a run
        if (!bytes.empty()) {
          size_t at = rng->UniformBounded(bytes.size());
          size_t n = 1 + rng->UniformBounded(8);
          for (size_t i = at; i < bytes.size() && i < at + n; ++i) {
            bytes[i] = static_cast<uint8_t>(rng->UniformBounded(256));
          }
        }
        break;
    }
  }
  return bytes;
}

// The shared checks return nullptr when every invariant holds, or a
// description of the first violation (see fuzz/fuzz_checks.h).
void CheckFrameParse(ByteSpan bytes) {
  const char* violated = fuzz::CheckFrameParse(bytes);
  EXPECT_TRUE(violated == nullptr) << violated;
}

void CheckDirectoryParse(ByteSpan dir, uint64_t dir_off) {
  const char* violated = fuzz::CheckDirectoryParse(dir, dir_off);
  EXPECT_TRUE(violated == nullptr) << violated;
}

TEST(NetFuzzTest, FrameParserSurvivesMutation) {
  std::vector<std::vector<uint8_t>> seeds = fuzz::GoldenFrameSeeds();
  // Golden path first: every seed decodes to itself.
  for (const auto& seed : seeds) {
    size_t consumed = 0;
    auto frame = net::DecodeFrame(SpanOf(seed), &consumed);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(consumed, seed.size());
  }
  Rng rng(0xFEEDF00D);
  for (int iter = 0; iter < 3000; ++iter) {
    const auto& seed = seeds[rng.UniformBounded(seeds.size())];
    auto mutated = Mutate(seed, &rng);
    CheckFrameParse(SpanOf(mutated));
  }
  // Pure noise, including the empty buffer.
  for (int iter = 0; iter < 1000; ++iter) {
    std::vector<uint8_t> noise(rng.UniformBounded(64));
    for (auto& b : noise) {
      b = static_cast<uint8_t>(rng.UniformBounded(256));
    }
    CheckFrameParse(SpanOf(noise));
  }
}

TEST(NetFuzzTest, VersionTypeMismatchIsRejected) {
  // Every type is legal in exactly one protocol version; a frame
  // claiming the other version is corruption even with a valid
  // checksum (a conforming peer never sends it).
  for (uint8_t type = net::kGetDir; type <= net::kError2; ++type) {
    uint8_t right = net::FrameVersionForType(type);
    uint8_t wrong = right == net::kProtoV1 ? net::kProtoV2 : net::kProtoV1;
    auto bytes = net::EncodeFrameWithVersion(wrong, type, ByteSpan{});
    auto frame = net::DecodeFrame(SpanOf(bytes));
    ASSERT_FALSE(frame.ok()) << "type " << int(type);
    EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
  }
}

TEST(NetFuzzTest, ErrorBodyDecodersSurviveNoise) {
  Rng rng(0xABCD1234);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> body(rng.UniformBounded(48));
    for (auto& b : body) {
      b = static_cast<uint8_t>(rng.UniformBounded(256));
    }
    Status decoded = net::DecodeErrorBody(SpanOf(body));
    EXPECT_FALSE(decoded.ok());  // an error frame is never OK
    EXPECT_FALSE(decoded.message().empty());
    uint64_t req_id = 0;
    Status decoded2 = net::DecodeErrorBody2(SpanOf(body), &req_id);
    EXPECT_FALSE(decoded2.ok());
    EXPECT_FALSE(decoded2.message().empty());
  }
}

TEST(NetFuzzTest, StatsBodyDecoderSurvivesMutation) {
  // Golden stats body: two corpora with histograms.
  serve::ServerStatsSnapshot snapshot;
  snapshot.connections = 3;
  snapshot.requests = 17;
  snapshot.bytes_sent = 4096;
  snapshot.errors = 1;
  snapshot.corpora.resize(2);
  snapshot.corpora[0].name = "web";
  snapshot.corpora[0].inner_name = "grepair";
  snapshot.corpora[0].num_nodes = 1000;
  snapshot.corpora[0].requests = 12;
  snapshot.corpora[0].histogram_epoch = 12;
  snapshot.corpora[0].shard_hits = {4, 0, 8};
  snapshot.corpora[0].shard_pinned = {1, 0, 1};
  snapshot.corpora[1].name = "cite";
  snapshot.corpora[1].inner_name = "k2";
  snapshot.corpora[1].num_nodes = 50;
  snapshot.corpora[1].requests = 5;
  snapshot.corpora[1].histogram_epoch = 5;
  snapshot.corpora[1].shard_hits = {5};
  snapshot.corpora[1].shard_pinned = {0};
  auto body = serve::EncodeStatsBody(9, snapshot);

  // Golden round-trip.
  uint64_t req_id = 0;
  auto decoded = serve::DecodeStatsBody(SpanOf(body), &req_id);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(req_id, 9u);
  ASSERT_EQ(decoded.value().corpora.size(), 2u);
  EXPECT_EQ(decoded.value().corpora[0].name, "web");
  EXPECT_EQ(decoded.value().corpora[0].histogram_epoch, 12u);
  EXPECT_EQ(decoded.value().corpora[0].shard_pinned,
            (std::vector<uint8_t>{1, 0, 1}));
  EXPECT_EQ(decoded.value().corpora[1].shard_hits,
            (std::vector<uint64_t>{5}));

  Rng rng(0x57A75BAD);
  for (int iter = 0; iter < 2000; ++iter) {
    auto mutated = Mutate(body, &rng);
    auto parsed = serve::DecodeStatsBody(SpanOf(mutated), nullptr);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
  // Pure noise.
  for (int iter = 0; iter < 1000; ++iter) {
    std::vector<uint8_t> noise(rng.UniformBounded(96));
    for (auto& b : noise) {
      b = static_cast<uint8_t>(rng.UniformBounded(256));
    }
    auto parsed = serve::DecodeStatsBody(SpanOf(noise), nullptr);
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
}

TEST(NetFuzzTest, DirectoryParserSurvivesMutation) {
  auto container = fuzz::GoldenContainerBytes(50, 3, 61);
  uint64_t dir_off = 0;
  auto region = shard::LocateV2DirectoryRegion(SpanOf(container), &dir_off);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  std::vector<uint8_t> dir(region.value().begin(), region.value().end());

  // Golden path parses.
  CheckDirectoryParse(SpanOf(dir), dir_off);
  ASSERT_TRUE(shard::ParseV2Directory(SpanOf(dir), dir_off).ok());

  // Exhaustive single-bit-flip sweep over the whole directory: what a
  // one-bit lie from a server (past the frame checksum) could look
  // like.
  for (size_t i = 0; i < dir.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = dir;
      flipped[i] ^= static_cast<uint8_t>(1u << bit);
      CheckDirectoryParse(SpanOf(flipped), dir_off);
    }
  }
  // Every truncation length.
  for (size_t len = 0; len < dir.size(); ++len) {
    CheckDirectoryParse(ByteSpan(dir.data(), len), dir_off);
  }
  // Havoc mutations, including a lying dir_off.
  Rng rng(0x600DD1E5);
  for (int iter = 0; iter < 2000; ++iter) {
    auto mutated = Mutate(dir, &rng);
    uint64_t off = rng.Bernoulli(0.5)
                       ? dir_off
                       : rng.UniformBounded(2 * container.size() + 1);
    CheckDirectoryParse(SpanOf(mutated), off);
  }
}

TEST(NetFuzzTest, WholeContainerMutationStaysFailClosed) {
  auto container = fuzz::GoldenContainerBytes(50, 3, 61);
  Rng rng(0xC0FFEE11);
  for (int iter = 0; iter < 800; ++iter) {
    auto mutated = Mutate(container, &rng);
    // The full open path: locate + checksum + parse. Either a clean
    // failure or a container consistent enough to open (payload
    // corruption is then caught at fault time by the shard checksums,
    // pinned by lazy_open_test).
    auto rep = shard::ShardedRep::Deserialize(SpanOf(mutated));
    if (!rep.ok()) {
      EXPECT_FALSE(rep.status().message().empty());
    }
  }
}

TEST(NetFuzzTest, EliasDifferentialSurvivesMutation) {
  // The fuzzer-shared differential: the word-at-a-time bit-stream and
  // Elias decoders must agree with their scalar oracles — values,
  // statuses and cursor positions — on every input, valid or corrupt
  // (fuzz/elias_stream_fuzzer.cc runs the same check coverage-guided).
  BitWriter w;
  for (uint64_t v = 1; v <= 200; ++v) EliasDeltaEncode(v, &w);
  for (int s = 0; s < 64; ++s) EliasGammaEncode(1ull << s, &w);
  const std::vector<uint8_t> seed = w.TakeBytes();

  const char* golden = fuzz::CheckEliasDifferential(seed.data(), seed.size());
  EXPECT_TRUE(golden == nullptr) << golden;

  Rng rng(0xD1FFD1FF);
  for (int iter = 0; iter < 1500; ++iter) {
    auto mutated = Mutate(seed, &rng);
    const char* violated =
        fuzz::CheckEliasDifferential(mutated.data(), mutated.size());
    EXPECT_TRUE(violated == nullptr) << violated;
  }
  // Pure noise, including the empty buffer.
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<uint8_t> noise(rng.UniformBounded(48));
    for (auto& b : noise) {
      b = static_cast<uint8_t>(rng.UniformBounded(256));
    }
    const char* violated =
        fuzz::CheckEliasDifferential(noise.data(), noise.size());
    EXPECT_TRUE(violated == nullptr) << violated;
  }
}

}  // namespace
}  // namespace grepair
