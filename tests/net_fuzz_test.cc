// Bounded-budget fuzzing of the two parsers a hostile network peer
// can reach: the GRNF wire-frame parser and the GRSHARD2 directory
// parser (the bytes a shard server ships at connect time). Seeds come
// from golden-path encodings of real frames and containers (in the
// style of tests/fuzz_roundtrip_test.cc); each iteration mutates a
// seed (bit flips, truncations, extensions, splices) and asserts the
// parsers either succeed or fail with a clean, non-empty Status —
// never crash, hang, or over-read (the ASan/UBSan CI leg is the
// memory-safety oracle). Budgets are fixed and small enough for ctest.

#include <gtest/gtest.h>

#include "src/api/grepair_api.h"
#include "src/net/frame.h"
#include "src/util/rng.h"

namespace grepair {
namespace {

// Deterministic mutation: 1-8 havoc steps over a copy of `seed`.
std::vector<uint8_t> Mutate(const std::vector<uint8_t>& seed, Rng* rng) {
  std::vector<uint8_t> bytes = seed;
  int steps = 1 + static_cast<int>(rng->UniformBounded(8));
  for (int s = 0; s < steps; ++s) {
    switch (rng->UniformBounded(4)) {
      case 0:  // bit flip
        if (!bytes.empty()) {
          size_t i = rng->UniformBounded(bytes.size());
          bytes[i] ^= static_cast<uint8_t>(1u << rng->UniformBounded(8));
        }
        break;
      case 1:  // truncate
        if (!bytes.empty()) {
          bytes.resize(rng->UniformBounded(bytes.size()));
        }
        break;
      case 2: {  // extend with noise
        size_t n = 1 + rng->UniformBounded(16);
        for (size_t i = 0; i < n; ++i) {
          bytes.push_back(static_cast<uint8_t>(rng->UniformBounded(256)));
        }
        break;
      }
      default:  // overwrite a run
        if (!bytes.empty()) {
          size_t at = rng->UniformBounded(bytes.size());
          size_t n = 1 + rng->UniformBounded(8);
          for (size_t i = at; i < bytes.size() && i < at + n; ++i) {
            bytes[i] = static_cast<uint8_t>(rng->UniformBounded(256));
          }
        }
        break;
    }
  }
  return bytes;
}

// Every parse outcome must be clean: ok, or a non-empty corruption
// message. (Crashes/overreads are caught by the sanitizer legs.)
void CheckFrameParse(ByteSpan bytes) {
  size_t consumed = 0;
  auto frame = net::DecodeFrame(bytes, &consumed);
  if (frame.ok()) {
    EXPECT_LE(consumed, bytes.size);
    EXPECT_GE(frame.value().type, net::kGetDir);
    EXPECT_LE(frame.value().type, net::kError);
    // A decoded frame re-encodes to the exact bytes it came from.
    auto reencoded =
        net::EncodeFrame(frame.value().type, SpanOf(frame.value().body));
    EXPECT_EQ(reencoded,
              std::vector<uint8_t>(bytes.data, bytes.data + consumed));
  } else {
    EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
    EXPECT_FALSE(frame.status().message().empty());
  }
}

TEST(NetFuzzTest, FrameParserSurvivesMutation) {
  // Seed corpus: one golden frame per type, plus an empty-body edge.
  std::vector<uint8_t> payload(300);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7);
  }
  std::vector<std::vector<uint8_t>> seeds = {
      net::EncodeFrame(net::kGetDir, ByteSpan{}),
      net::EncodeFrame(net::kGetShard,
                       ByteSpan(payload.data(), 4)),
      net::EncodeFrame(net::kDir, SpanOf(payload)),
      net::EncodeFrame(net::kShard, SpanOf(payload)),
      net::EncodeFrame(net::kError,
                       SpanOf(net::EncodeErrorBody(
                           Status::InvalidArgument("seed error")))),
  };
  // Golden path first: every seed decodes to itself.
  for (const auto& seed : seeds) {
    size_t consumed = 0;
    auto frame = net::DecodeFrame(SpanOf(seed), &consumed);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(consumed, seed.size());
  }
  Rng rng(0xFEEDF00D);
  for (int iter = 0; iter < 3000; ++iter) {
    const auto& seed = seeds[rng.UniformBounded(seeds.size())];
    auto mutated = Mutate(seed, &rng);
    CheckFrameParse(SpanOf(mutated));
  }
  // Pure noise, including the empty buffer.
  for (int iter = 0; iter < 1000; ++iter) {
    std::vector<uint8_t> noise(rng.UniformBounded(64));
    for (auto& b : noise) {
      b = static_cast<uint8_t>(rng.UniformBounded(256));
    }
    CheckFrameParse(SpanOf(noise));
  }
}

TEST(NetFuzzTest, ErrorBodyDecoderSurvivesNoise) {
  Rng rng(0xABCD1234);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> body(rng.UniformBounded(48));
    for (auto& b : body) {
      b = static_cast<uint8_t>(rng.UniformBounded(256));
    }
    Status decoded = net::DecodeErrorBody(SpanOf(body));
    EXPECT_FALSE(decoded.ok());  // an error frame is never OK
    EXPECT_FALSE(decoded.message().empty());
  }
}

// A small real container whose directory region seeds the fuzzer.
std::vector<uint8_t> GoldenContainer() {
  GeneratedGraph gg = BarabasiAlbert(50, 3, 61);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "3");
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  EXPECT_TRUE(rep.ok()) << rep.status().ToString();
  return dynamic_cast<shard::ShardedRep*>(rep.value().get())->SerializeV2();
}

void CheckDirectoryParse(ByteSpan dir, uint64_t dir_off) {
  auto parsed = shard::ParseV2Directory(dir, dir_off);
  if (!parsed.ok()) {
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
    EXPECT_FALSE(parsed.status().message().empty());
    return;
  }
  // A successful parse must uphold the invariants queries rely on.
  const shard::ParsedDirectory& d = parsed.value();
  ASSERT_EQ(d.rows.size(), d.node_maps.size());
  for (size_t i = 0; i < d.rows.size(); ++i) {
    EXPECT_EQ(d.rows[i].node_count, d.node_maps[i].size());
    for (size_t k = 0; k < d.node_maps[i].size(); ++k) {
      EXPECT_LT(d.node_maps[i][k], d.num_nodes);
      if (k > 0) EXPECT_LT(d.node_maps[i][k - 1], d.node_maps[i][k]);
    }
    if (d.rows[i].length > 0) {
      EXPECT_GE(d.rows[i].offset, 8u);
      EXPECT_LE(d.rows[i].offset + d.rows[i].length, dir_off);
    }
  }
}

TEST(NetFuzzTest, DirectoryParserSurvivesMutation) {
  auto container = GoldenContainer();
  uint64_t dir_off = 0;
  auto region = shard::LocateV2DirectoryRegion(SpanOf(container), &dir_off);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  std::vector<uint8_t> dir(region.value().begin(), region.value().end());

  // Golden path parses.
  CheckDirectoryParse(SpanOf(dir), dir_off);
  ASSERT_TRUE(shard::ParseV2Directory(SpanOf(dir), dir_off).ok());

  // Exhaustive single-bit-flip sweep over the whole directory: what a
  // one-bit lie from a server (past the frame checksum) could look
  // like.
  for (size_t i = 0; i < dir.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = dir;
      flipped[i] ^= static_cast<uint8_t>(1u << bit);
      CheckDirectoryParse(SpanOf(flipped), dir_off);
    }
  }
  // Every truncation length.
  for (size_t len = 0; len < dir.size(); ++len) {
    CheckDirectoryParse(ByteSpan(dir.data(), len), dir_off);
  }
  // Havoc mutations, including a lying dir_off.
  Rng rng(0x600DD1E5);
  for (int iter = 0; iter < 2000; ++iter) {
    auto mutated = Mutate(dir, &rng);
    uint64_t off = rng.Bernoulli(0.5)
                       ? dir_off
                       : rng.UniformBounded(2 * container.size() + 1);
    CheckDirectoryParse(SpanOf(mutated), off);
  }
}

TEST(NetFuzzTest, WholeContainerMutationStaysFailClosed) {
  auto container = GoldenContainer();
  Rng rng(0xC0FFEE11);
  for (int iter = 0; iter < 800; ++iter) {
    auto mutated = Mutate(container, &rng);
    // The full open path: locate + checksum + parse. Either a clean
    // failure or a container consistent enough to open (payload
    // corruption is then caught at fault time by the shard checksums,
    // pinned by lazy_open_test).
    auto rep = shard::ShardedRep::Deserialize(SpanOf(mutated));
    if (!rep.ok()) {
      EXPECT_FALSE(rep.status().message().empty());
    }
  }
}

}  // namespace
}  // namespace grepair
