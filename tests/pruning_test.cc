// Pruning tests (Section III-A3): inlining preserves val(G) and the
// node mapping, ref==1 rules disappear, contribution-based removal
// matches the formula, and full pipelines stay exact.

#include <gtest/gtest.h>

#include "src/datasets/generators.h"
#include "src/graph/wl_hash.h"
#include "src/grammar/pruning.h"
#include "src/grepair/compressor.h"

namespace grepair {
namespace {

Alphabet AbAlphabet() {
  Alphabet a;
  a.Add("a", 2);
  a.Add("b", 2);
  return a;
}

// S --B--> with B -> A A and A -> a a: A is referenced twice, B once.
SlhrGrammar ChainedGrammar() {
  SlhrGrammar g(AbAlphabet(), Hypergraph(2));
  Label a_nt = g.AddNonterminal(2, "A");
  {
    Hypergraph rhs(3);
    rhs.AddSimpleEdge(0, 2, 0);
    rhs.AddSimpleEdge(2, 1, 0);
    rhs.SetExternal({0, 1});
    g.SetRule(a_nt, std::move(rhs));
  }
  Label b_nt = g.AddNonterminal(2, "B");
  {
    Hypergraph rhs(3);
    rhs.AddEdge(a_nt, {0, 2});
    rhs.AddEdge(a_nt, {2, 1});
    rhs.SetExternal({0, 1});
    g.SetRule(b_nt, std::move(rhs));
  }
  g.mutable_start()->AddEdge(b_nt, {0, 1});
  return g;
}

TEST(PruningTest, InlinePreservesDerivation) {
  SlhrGrammar g = ChainedGrammar();
  auto before = Derive(g);
  ASSERT_TRUE(before.ok());

  InlineRuleEverywhere(&g, g.NonterminalLabel(0), nullptr);  // inline A
  ASSERT_TRUE(g.Validate().ok()) << g.Validate().ToString();
  EXPECT_EQ(g.num_rules(), 1u);  // only B remains
  auto after = Derive(g);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(before.value().EqualUpToEdgeOrder(after.value()));
}

TEST(PruningTest, InlineTopRulePreservesDerivation) {
  SlhrGrammar g = ChainedGrammar();
  auto before = Derive(g);
  ASSERT_TRUE(before.ok());
  InlineRuleEverywhere(&g, g.NonterminalLabel(1), nullptr);  // inline B
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.num_rules(), 1u);  // A remains, now referenced from S
  auto after = Derive(g);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(before.value().EqualUpToEdgeOrder(after.value()));
}

TEST(PruningTest, SingleRefRuleRemoved) {
  SlhrGrammar g = ChainedGrammar();
  auto before = Derive(g);
  ASSERT_TRUE(before.ok());
  PruneOptions options;
  options.remove_nonpositive = false;  // isolate phase 1
  auto stats = PruneGrammar(&g, nullptr, options);
  EXPECT_GE(stats.removed_single_ref, 1u);  // B had ref 1
  ASSERT_TRUE(g.Validate().ok());
  auto after = Derive(g);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(before.value().EqualUpToEdgeOrder(after.value()));
}

TEST(PruningTest, NonContributingRuleRemoved) {
  // A referenced twice with |rhs|=5, handle=3: con = 2*(5-3)-5 = -1,
  // so phase 2 must inline it.
  SlhrGrammar g(AbAlphabet(), Hypergraph(4));
  Label a_nt = g.AddNonterminal(2, "A");
  Hypergraph rhs(3);
  rhs.AddSimpleEdge(0, 2, 0);
  rhs.AddSimpleEdge(2, 1, 0);
  rhs.SetExternal({0, 1});
  g.SetRule(a_nt, std::move(rhs));
  g.mutable_start()->AddEdge(a_nt, {0, 1});
  g.mutable_start()->AddEdge(a_nt, {2, 3});
  EXPECT_EQ(g.Contribution(a_nt, 2), -1);

  auto before = Derive(g);
  ASSERT_TRUE(before.ok());
  PruneOptions options;
  options.remove_single_refs = false;
  auto stats = PruneGrammar(&g, nullptr, options);
  EXPECT_EQ(stats.removed_contribution, 1u);
  EXPECT_EQ(g.num_rules(), 0u);
  auto after = Derive(g);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(before.value().EqualUpToEdgeOrder(after.value()));
}

TEST(PruningTest, ContributingRuleKept) {
  // Four references: con = 4*(5-3)-5 = 3 > 0, rule survives.
  SlhrGrammar g(AbAlphabet(), Hypergraph(8));
  Label a_nt = g.AddNonterminal(2, "A");
  Hypergraph rhs(3);
  rhs.AddSimpleEdge(0, 2, 0);
  rhs.AddSimpleEdge(2, 1, 0);
  rhs.SetExternal({0, 1});
  g.SetRule(a_nt, std::move(rhs));
  for (uint32_t i = 0; i < 4; ++i) {
    g.mutable_start()->AddEdge(a_nt, {2 * i, 2 * i + 1});
  }
  uint64_t size_before = g.TotalSize();
  auto stats = PruneGrammar(&g, nullptr, PruneOptions());
  EXPECT_EQ(g.num_rules(), 1u);
  EXPECT_EQ(stats.size_after, size_before);
}

TEST(PruningTest, MappingSplicedThroughInline) {
  // Full pipeline with tracking: compress (no prune), then prune with
  // the mapping and check exact reconstruction still works.
  GeneratedGraph gg = CoAuthorship(120, 200, 31);
  CompressOptions options;
  options.prune = false;
  options.track_node_mapping = true;
  auto result = Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(result.ok());
  SlhrGrammar grammar = std::move(result.value().grammar);
  NodeMapping mapping = std::move(result.value().mapping);
  ASSERT_TRUE(ValidateMapping(grammar, mapping).ok());

  PruneGrammar(&grammar, &mapping, PruneOptions());
  ASSERT_TRUE(grammar.Validate().ok());
  ASSERT_TRUE(ValidateMapping(grammar, mapping).ok());
  auto original = DeriveOriginal(grammar, mapping);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  EXPECT_TRUE(original.value().EqualUpToEdgeOrder(gg.graph));
}

TEST(PruningTest, FixpointIterationIsSafe) {
  GeneratedGraph gg = GamePositions(30, 8, 3, 4, 33);
  CompressOptions options;
  options.prune = false;
  options.track_node_mapping = true;
  auto result = Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(result.ok());
  SlhrGrammar grammar = std::move(result.value().grammar);
  NodeMapping mapping = std::move(result.value().mapping);

  PruneOptions prune;
  prune.iterate_to_fixpoint = true;
  PruneGrammar(&grammar, &mapping, prune);
  ASSERT_TRUE(grammar.Validate().ok());
  auto original = DeriveOriginal(grammar, mapping);
  ASSERT_TRUE(original.ok());
  EXPECT_TRUE(original.value().EqualUpToEdgeOrder(gg.graph));
}

TEST(PruningTest, PruningNeverGrowsGrammar) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    GeneratedGraph gg = ErdosRenyi(200, 600, seed, 2);
    CompressOptions options;
    options.prune = false;
    auto result = Compress(gg.graph, gg.alphabet, options);
    ASSERT_TRUE(result.ok());
    SlhrGrammar grammar = std::move(result.value().grammar);
    uint64_t before = grammar.TotalSize();
    auto stats = PruneGrammar(&grammar, nullptr, PruneOptions());
    EXPECT_LE(stats.size_after, before);
    EXPECT_EQ(stats.size_before, before);
    auto derived = Derive(grammar);
    ASSERT_TRUE(derived.ok());
    EXPECT_EQ(WlHash(derived.value()), WlHash(gg.graph));
  }
}

}  // namespace
}  // namespace grepair
