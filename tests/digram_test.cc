// Tests for digram shapes (Definitions 2-3): canonical orientation,
// externality handling, rule construction and occurrence node mapping.

#include <gtest/gtest.h>

#include <set>

#include "src/grepair/digram.h"

namespace grepair {
namespace {

std::function<bool(NodeId)> ExternalSet(std::set<NodeId> ext) {
  return [ext = std::move(ext)](NodeId v) { return ext.count(v) > 0; };
}

HEdge MakeEdge(Label l, std::vector<NodeId> att) {
  HEdge e;
  e.label = l;
  e.att = std::move(att);
  return e;
}

TEST(DigramShapeTest, DisconnectedEdgesAreNoDigram) {
  DigramShape shape;
  bool swapped;
  EXPECT_FALSE(ComputeDigramShape(MakeEdge(0, {0, 1}), MakeEdge(0, {2, 3}),
                                  ExternalSet({}), &shape, &swapped));
}

TEST(DigramShapeTest, ChainDigram) {
  // a: 0->1, b: 1->2; middle node internal, ends external.
  DigramShape shape;
  bool swapped;
  ASSERT_TRUE(ComputeDigramShape(MakeEdge(0, {0, 1}), MakeEdge(1, {1, 2}),
                                 ExternalSet({0, 2}), &shape, &swapped));
  EXPECT_EQ(shape.NumNodes(), 3);
  EXPECT_EQ(shape.NumExternal(), 2);
  EXPECT_EQ(shape.NumInternal(), 1);
  ASSERT_EQ(shape.shared.size(), 1u);
}

TEST(DigramShapeTest, CanonicalUnderSwap) {
  // The same pair given in both orders must produce identical shapes.
  HEdge a = MakeEdge(0, {0, 1});
  HEdge b = MakeEdge(1, {1, 2});
  auto ext = ExternalSet({0, 2});
  DigramShape s1, s2;
  bool sw1, sw2;
  ASSERT_TRUE(ComputeDigramShape(a, b, ext, &s1, &sw1));
  ASSERT_TRUE(ComputeDigramShape(b, a, ext, &s2, &sw2));
  EXPECT_TRUE(s1 == s2);
  EXPECT_NE(sw1, sw2);  // exactly one ordering got swapped
}

TEST(DigramShapeTest, DirectionDistinguishesShapes) {
  // a->b chain vs a<-b chain (directions differ) are different digrams.
  auto ext = ExternalSet({0, 2});
  DigramShape chain, converge;
  bool sw;
  ASSERT_TRUE(ComputeDigramShape(MakeEdge(0, {0, 1}), MakeEdge(0, {1, 2}),
                                 ext, &chain, &sw));
  ASSERT_TRUE(ComputeDigramShape(MakeEdge(0, {0, 1}), MakeEdge(0, {2, 1}),
                                 ext, &converge, &sw));
  EXPECT_FALSE(chain == converge);
}

TEST(DigramShapeTest, ExternalityDistinguishesShapes) {
  // Same topology, but in one occurrence the middle node has outside
  // edges (Figure 4's two grammars differ exactly this way).
  DigramShape middle_internal, middle_external;
  bool sw;
  ASSERT_TRUE(ComputeDigramShape(MakeEdge(0, {0, 1}), MakeEdge(0, {1, 2}),
                                 ExternalSet({0, 2}), &middle_internal, &sw));
  ASSERT_TRUE(ComputeDigramShape(MakeEdge(0, {0, 1}), MakeEdge(0, {1, 2}),
                                 ExternalSet({0, 1, 2}), &middle_external,
                                 &sw));
  EXPECT_FALSE(middle_internal == middle_external);
  EXPECT_EQ(middle_internal.NumExternal(), 2);
  EXPECT_EQ(middle_external.NumExternal(), 3);
}

TEST(DigramShapeTest, EightUnlabeledDigrams) {
  // Figure 2: with one label and fully external nodes there are exactly
  // eight digrams over two direction-bearing rank-2 edges sharing one
  // node (2 orientations of the shared node in each edge x ... = 8,
  // minus symmetric double counting). Enumerate all oriented pairs and
  // count canonical shapes.
  std::set<std::vector<uint64_t>> shapes;
  auto ext = ExternalSet({0, 1, 2});
  // Edge x uses nodes {0,1}, edge y uses {1,2}, in all 4 direction
  // combinations; plus the "parallel" cases where both use {0,1}.
  std::vector<HEdge> xs = {MakeEdge(0, {0, 1}), MakeEdge(0, {1, 0})};
  std::vector<HEdge> ys = {MakeEdge(0, {1, 2}), MakeEdge(0, {2, 1}),
                           MakeEdge(0, {0, 1}), MakeEdge(0, {1, 0})};
  for (const auto& x : xs) {
    for (const auto& y : ys) {
      DigramShape s;
      bool sw;
      if (ComputeDigramShape(x, y, ext, &s, &sw)) {
        std::vector<uint64_t> key{s.label0, s.label1, s.rank0, s.rank1,
                                  s.ext0, s.ext1};
        for (auto p : s.shared) key.push_back(p);
        shapes.insert(key);
      }
    }
  }
  // Chain (x out of shared node, y in), convergent (both in), divergent
  // (both out) — head-tail and tail-head chains coincide under the
  // canonical orientation — plus parallel and antiparallel double
  // edges: 5 canonical shapes. (The paper's Figure 2 counts 8 possible
  // digrams for undirected unlabeled edges, a different enumeration
  // that includes shapes restriction (1) and externality fold together
  // here.)
  EXPECT_EQ(shapes.size(), 5u);
}

TEST(DigramRhsTest, CanonicalFormChain) {
  DigramShape shape;
  bool swapped;
  ASSERT_TRUE(ComputeDigramShape(MakeEdge(0, {10, 11}), MakeEdge(1, {11, 12}),
                                 ExternalSet({10, 12}), &shape, &swapped));
  Hypergraph rhs = BuildDigramRhs(shape);
  EXPECT_EQ(rhs.num_nodes(), 3u);
  ASSERT_EQ(rhs.ext().size(), 2u);
  EXPECT_EQ(rhs.ext()[0], 0u);
  EXPECT_EQ(rhs.ext()[1], 1u);
  ASSERT_EQ(rhs.num_edges(), 2u);
  // Rule application must reproduce the chain: one edge enters the
  // internal node (id 2), the other leaves it.
  const HEdge* in_edge = nullptr;
  const HEdge* out_edge = nullptr;
  for (const auto& e : rhs.edges()) {
    if (e.att[1] == 2) in_edge = &e;
    if (e.att[0] == 2) out_edge = &e;
  }
  ASSERT_NE(in_edge, nullptr);
  ASSERT_NE(out_edge, nullptr);
  EXPECT_EQ(in_edge->label, 0u);
  EXPECT_EQ(out_edge->label, 1u);
}

TEST(DigramRhsTest, MapOccurrenceNodesMatchesRhs) {
  // Star pair: hub external, two leaves internal.
  HEdge a = MakeEdge(0, {7, 20});
  HEdge b = MakeEdge(0, {7, 30});
  DigramShape shape;
  bool swapped;
  ASSERT_TRUE(ComputeDigramShape(a, b, ExternalSet({7}), &shape, &swapped));
  EXPECT_EQ(shape.NumExternal(), 1);
  EXPECT_EQ(shape.NumInternal(), 2);

  std::vector<NodeId> attachment, removal;
  const auto& att0 = swapped ? b.att : a.att;
  const auto& att1 = swapped ? a.att : b.att;
  MapOccurrenceNodes(shape, att0, att1, &attachment, &removal);
  EXPECT_EQ(attachment, (std::vector<NodeId>{7}));
  ASSERT_EQ(removal.size(), 2u);
  EXPECT_TRUE((removal[0] == 20 && removal[1] == 30) ||
              (removal[0] == 30 && removal[1] == 20));
}

TEST(DigramRhsTest, HyperedgePair) {
  // Rank-3 hyperedge sharing two nodes with a rank-2 edge.
  HEdge h = MakeEdge(2, {1, 2, 3});
  HEdge e = MakeEdge(0, {3, 1});
  DigramShape shape;
  bool swapped;
  ASSERT_TRUE(
      ComputeDigramShape(h, e, ExternalSet({1, 2}), &shape, &swapped));
  EXPECT_EQ(shape.NumNodes(), 3);
  EXPECT_EQ(shape.shared.size(), 2u);
  EXPECT_EQ(shape.NumExternal(), 2);
  Hypergraph rhs = BuildDigramRhs(shape);
  EXPECT_EQ(rhs.num_nodes(), 3u);
  EXPECT_EQ(rhs.ext().size(), 2u);
  // Total size: 3 nodes + hyperedge (3) + simple edge (1).
  EXPECT_EQ(rhs.TotalSize(), 7u);
}

TEST(DigramShapeTest, HashEqualForEqualShapes) {
  auto ext = ExternalSet({0, 2});
  DigramShape s1, s2;
  bool sw;
  ASSERT_TRUE(ComputeDigramShape(MakeEdge(0, {0, 1}), MakeEdge(1, {1, 2}),
                                 ext, &s1, &sw));
  ASSERT_TRUE(ComputeDigramShape(MakeEdge(1, {5, 6}), MakeEdge(0, {4, 5}),
                                 ExternalSet({4, 6}), &s2, &sw));
  EXPECT_TRUE(s1 == s2);  // same digram at different nodes
  EXPECT_EQ(DigramShapeHash()(s1), DigramShapeHash()(s2));
}

}  // namespace
}  // namespace grepair
