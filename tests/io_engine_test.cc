// IoEngine differential and failure-path tests: the io_uring batch
// path and the pread fallback must return byte-identical data for the
// same requests, invalid requests must fail individually without
// poisoning their batch, and reads that cross EOF must come back
// kCorruption (shard lengths are directory-attested, so a short file
// is damage, not an early finish).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/io_engine.h"
#include "src/util/mmap_file.h"
#include "src/util/status.h"

namespace grepair {
namespace {

// Deterministic non-repeating filler so offset mistakes show up as
// mismatches, not coincidences.
std::vector<uint8_t> TestBytes(size_t n) {
  std::vector<uint8_t> bytes(n);
  uint32_t x = 0x9e3779b9;
  for (size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    bytes[i] = static_cast<uint8_t>(x >> 24);
  }
  return bytes;
}

struct TempFile {
  explicit TempFile(const std::vector<uint8_t>& bytes)
      : path(::testing::TempDir() + "io_engine_test.bin") {
    EXPECT_TRUE(WriteFileBytes(path, bytes).ok());
    fd = ::open(path.c_str(), O_RDONLY);
    EXPECT_GE(fd, 0);
  }
  ~TempFile() {
    if (fd >= 0) ::close(fd);
    std::remove(path.c_str());
  }
  std::string path;
  int fd = -1;
};

// Chops [0, total) into deliberately ragged, unaligned chunks.
std::vector<IoReadRequest> ChunkedReads(int fd, size_t total,
                                        std::vector<uint8_t>* dst) {
  dst->assign(total, 0);
  std::vector<IoReadRequest> reads;
  size_t off = 0;
  size_t step = 1;
  while (off < total) {
    size_t len = std::min(step, total - off);
    IoReadRequest req;
    req.fd = fd;
    req.offset = off;
    req.dst = dst->data() + off;
    req.length = static_cast<uint32_t>(len);
    reads.push_back(req);
    off += len;
    step = step * 3 + 7;  // 1, 10, 37, 118, ... crosses page boundaries
  }
  return reads;
}

TEST(IoEngineTest, UringAndFallbackReadsAreByteIdentical) {
  std::vector<uint8_t> content = TestBytes(300 * 1000 + 13);
  TempFile file(content);

  IoEngine engine;
  std::vector<uint8_t> via_default, via_fallback;
  auto default_reads = ChunkedReads(file.fd, content.size(), &via_default);
  uint64_t default_batches = engine.ReadBatch(&default_reads);
  for (const auto& r : default_reads) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  }

  engine.set_force_fallback(true);
  auto fallback_reads = ChunkedReads(file.fd, content.size(), &via_fallback);
  uint64_t fallback_batches = engine.ReadBatch(&fallback_reads);
  engine.set_force_fallback(false);
  for (const auto& r : fallback_reads) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  }

  // The forced fallback never submits to the ring; the default path
  // batches exactly when the kernel has io_uring.
  EXPECT_EQ(fallback_batches, 0u);
  if (engine.uring_available()) {
    EXPECT_GT(default_batches, 0u);
  } else {
    EXPECT_EQ(default_batches, 0u);
  }
  EXPECT_EQ(via_default, content);
  EXPECT_EQ(via_fallback, content);
}

TEST(IoEngineTest, InvalidRequestsFailIndividuallyNotTheBatch) {
  std::vector<uint8_t> content = TestBytes(4096);
  TempFile file(content);

  for (int force = 0; force < 2; ++force) {
    IoEngine engine;
    engine.set_force_fallback(force == 1);
    std::vector<uint8_t> good(1024, 0), orphan(16, 0);
    std::vector<IoReadRequest> reads(3);
    reads[0].fd = -1;  // no descriptor
    reads[0].dst = orphan.data();
    reads[0].length = 16;
    reads[1].fd = file.fd;  // no destination
    reads[1].dst = nullptr;
    reads[1].length = 16;
    reads[2].fd = file.fd;  // fine, and must still run
    reads[2].offset = 512;
    reads[2].dst = good.data();
    reads[2].length = 1024;
    engine.ReadBatch(&reads);
    EXPECT_EQ(reads[0].status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(reads[1].status.code(), StatusCode::kInvalidArgument);
    ASSERT_TRUE(reads[2].status.ok()) << reads[2].status.ToString();
    EXPECT_TRUE(std::equal(good.begin(), good.end(),
                           content.begin() + 512));
  }
}

TEST(IoEngineTest, ZeroLengthReadSucceeds) {
  std::vector<uint8_t> content = TestBytes(128);
  TempFile file(content);
  for (int force = 0; force < 2; ++force) {
    IoEngine engine;
    engine.set_force_fallback(force == 1);
    uint8_t sentinel = 0xAB;
    std::vector<IoReadRequest> reads(1);
    reads[0].fd = file.fd;
    reads[0].offset = 64;
    reads[0].dst = &sentinel;
    reads[0].length = 0;
    engine.ReadBatch(&reads);
    EXPECT_TRUE(reads[0].status.ok()) << reads[0].status.ToString();
    EXPECT_EQ(sentinel, 0xAB);  // nothing written
  }
}

TEST(IoEngineTest, ReadsCrossingEofAreCorruption) {
  std::vector<uint8_t> content = TestBytes(1000);
  TempFile file(content);
  for (int force = 0; force < 2; ++force) {
    IoEngine engine;
    engine.set_force_fallback(force == 1);
    std::vector<uint8_t> dst(256, 0);
    std::vector<IoReadRequest> reads(2);
    reads[0].fd = file.fd;  // straddles EOF
    reads[0].offset = 900;
    reads[0].dst = dst.data();
    reads[0].length = 200;
    reads[1].fd = file.fd;  // entirely past EOF
    reads[1].offset = 5000;
    reads[1].dst = dst.data();
    reads[1].length = 64;
    engine.ReadBatch(&reads);
    EXPECT_EQ(reads[0].status.code(), StatusCode::kCorruption)
        << reads[0].status.ToString();
    EXPECT_EQ(reads[1].status.code(), StatusCode::kCorruption)
        << reads[1].status.ToString();
  }
}

}  // namespace
}  // namespace grepair
