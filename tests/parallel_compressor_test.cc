// ParallelCompressor and sharded-codec concurrency tests.
//
// The load-bearing property is determinism: the bytes a sharded codec
// produces must not depend on the thread count or on scheduling, so
// threads=1 and threads=8 runs are asserted byte-identical. The
// concurrent-callers test exercises the registry and
// GraphCodec::Compress from several threads at once; the CI sanitizer
// matrix (ASan/UBSan, TSan) runs this binary to catch races that
// happen to produce the right bytes.

#include <gtest/gtest.h>

#include <thread>

#include "src/api/grepair_api.h"

namespace grepair {
namespace shard {
namespace {

std::vector<uint8_t> CompressBytes(const std::string& backend,
                                   const GeneratedGraph& gg,
                                   const std::string& spec) {
  auto codec = api::CodecRegistry::Create(backend);
  EXPECT_TRUE(codec.ok()) << codec.status().ToString();
  auto options = api::CodecOptions::Parse(spec);
  EXPECT_TRUE(options.ok());
  auto rep = codec.value()->Compress(gg.graph, gg.alphabet, options.value());
  EXPECT_TRUE(rep.ok()) << backend << ": " << rep.status().ToString();
  if (!rep.ok()) return {};
  return rep.value()->Serialize();
}

TEST(ParallelCompressorTest, ThreadCountDoesNotChangeTheBytes) {
  GeneratedGraph gg = BarabasiAlbert(600, 3, 17);
  for (const char* backend : {"sharded:grepair", "sharded:deflate"}) {
    for (const char* strategy : {"edge-range", "bfs"}) {
      std::string base =
          std::string("shards=8,strategy=") + strategy + ",threads=";
      auto one = CompressBytes(backend, gg, base + "1");
      auto eight = CompressBytes(backend, gg, base + "8");
      ASSERT_FALSE(one.empty());
      EXPECT_EQ(one, eight)
          << backend << " with strategy " << strategy
          << " is not deterministic across thread counts";
    }
  }
}

TEST(ParallelCompressorTest, RepeatedRunsAreByteIdentical) {
  GeneratedGraph gg = RdfTypes(900, 15, 3);
  auto a = CompressBytes("sharded:grepair", gg, "shards=5,threads=4");
  auto b = CompressBytes("sharded:grepair", gg, "shards=5,threads=4");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ParallelCompressorTest, PerShardFailureSurfacesLowestShardError) {
  // hn rejects labeled alphabets; every shard fails, and the reported
  // error must deterministically be shard 0's.
  GeneratedGraph gg = ErdosRenyi(80, 240, 7, /*num_labels=*/3);
  PartitionOptions options;
  options.num_shards = 4;
  auto partition = PartitionGraph(gg.graph, options);
  ASSERT_TRUE(partition.ok());
  auto inner = api::CodecRegistry::Create("hn").ValueOrDie();
  ParallelCompressor compressor(*inner, 4);
  auto result = compressor.CompressShards(partition.value(), gg.alphabet,
                                          api::CodecOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("shard 0"), std::string::npos)
      << result.status().ToString();
}

TEST(ParallelCompressorTest, EmptyShardsCompressToEmptyPayloads) {
  // 5 edges over 64 shards: most shards are edgeless and must neither
  // reach the inner codec nor break the round-trip.
  GeneratedGraph gg = CycleWithDiagonal();
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  auto options = api::CodecOptions::Parse("shards=64,threads=8").ValueOrDie();
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto* sharded = dynamic_cast<ShardedRep*>(rep.value().get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->num_shards(), 65u);
  size_t empty = 0;
  for (size_t i = 0; i < sharded->num_shards(); ++i) {
    if (sharded->entry(i).payload.empty()) ++empty;
  }
  EXPECT_GE(empty, 60u);

  auto back = codec->Deserialize(rep.value()->Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  auto graph = back.value()->Decompress();
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph.value().EqualUpToEdgeOrder(gg.graph));
}

TEST(ParallelCompressorTest, ConcurrentCallersShareCodecsSafely) {
  // GraphCodec::Compress is documented thread-safe; hammer one codec
  // instance and the registry from several threads at once (TSan leg
  // verifies the absence of data races, not just matching bytes).
  GeneratedGraph gg = BarabasiAlbert(300, 3, 23);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  auto options = api::CodecOptions::Parse("shards=4,threads=2").ValueOrDie();
  auto expected = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(expected.ok());
  auto expected_bytes = expected.value()->Serialize();

  std::vector<std::vector<uint8_t>> got(4);
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t]() {
      auto mine = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
      auto rep = codec->Compress(gg.graph, gg.alphabet, options);
      auto rep2 = mine->Compress(gg.graph, gg.alphabet, options);
      if (rep.ok() && rep2.ok()) {
        auto bytes = rep.value()->Serialize();
        if (bytes == rep2.value()->Serialize()) got[t] = std::move(bytes);
      }
    });
  }
  for (auto& t : callers) t.join();
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(got[t], expected_bytes) << "caller " << t;
  }
}

TEST(ParallelCompressorTest, SharedRepSerializesSafelyFromManyThreads) {
  // Pins ShardedRep's no-mutable-state contract: Serialize() rebuilds
  // and ByteSize() computes arithmetically (deliberately no cache), so
  // several threads hitting ONE shared rep are race-free and agree on
  // the size (TSan leg verifies the race-free half).
  GeneratedGraph gg = BarabasiAlbert(200, 3, 41);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  auto options = api::CodecOptions::Parse("shards=4,threads=2").ValueOrDie();
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(rep.ok());
  const api::CompressedRep& shared = *rep.value();
  std::vector<size_t> sizes(4, 0);
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t]() {
      sizes[t] = (t % 2 == 0) ? shared.Serialize().size()
                              : shared.ByteSize();
    });
  }
  for (auto& t : callers) t.join();
  for (size_t size : sizes) EXPECT_EQ(size, sizes[0]);
}

TEST(ParallelCompressorTest, DecompressThreadsDoNotChangeTheGraph) {
  GeneratedGraph gg = CoAuthorship(250, 250, 9);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  auto options = api::CodecOptions::Parse("shards=6,threads=4").ValueOrDie();
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(rep.ok());
  auto* sharded = dynamic_cast<ShardedRep*>(rep.value().get());
  ASSERT_NE(sharded, nullptr);
  auto sequential = sharded->Decompress();
  sharded->set_decompress_threads(8);
  auto parallel = sharded->Decompress();
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(sequential.value() == parallel.value());
  EXPECT_TRUE(sequential.value().EqualUpToEdgeOrder(gg.graph));
}

}  // namespace
}  // namespace shard
}  // namespace grepair
