// Dynamic-corpus differential suite: the overlay/fold/delta write
// path of the sharded stack (src/shard/delta_overlay.h +
// ShardedRep::ApplyEdits/FoldOverlay/ApplyDelta/BuildDelta +
// api::OpenVersioned) proven equivalent to recompressing the mutated
// graph from scratch.
//
// For every registered base codec, a random edit stream applied
// through the overlay must answer every query — singles, batches,
// reachability, full Decompress — identically to a fresh
// sharded:<inner> compression of the mutated graph, single-threaded
// and under 8 concurrent query threads, before and after folding the
// overlay into the shard grammars. The GRSHARD3 chain tests prove a
// written delta file reproduces the same corpus through
// api::OpenVersioned, that lineage tampering fails closed, that a
// SIGKILL mid-fold never damages the base container, and that the
// atomic write path leaves no torn or stray files. Runs under the
// ASan/UBSan and TSan CI legs.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/api/grepair_api.h"
#include "src/util/hashing.h"
#include "src/util/mmap_file.h"

namespace grepair {
namespace {

using shard::EdgeEdit;

// Ground truth for a mutated corpus: the rank-2 edge list under the
// overlay's set-based semantics (delete kills every copy of the pair,
// an add lands only when the exact triple is absent).
struct TruthCorpus {
  uint32_t num_nodes = 0;
  std::vector<std::array<uint32_t, 3>> edges;  // (u, v, label)

  static TruthCorpus FromGraph(const Hypergraph& g) {
    TruthCorpus truth;
    truth.num_nodes = g.num_nodes();
    for (const HEdge& e : g.edges()) {
      if (e.att.size() == 2) {
        truth.edges.push_back({e.att[0], e.att[1], e.label});
      }
    }
    return truth;
  }

  bool HasTriple(uint32_t u, uint32_t v, uint32_t label) const {
    for (const auto& e : edges) {
      if (e[0] == u && e[1] == v && e[2] == label) return true;
    }
    return false;
  }

  bool HasPair(uint32_t u, uint32_t v) const {
    for (const auto& e : edges) {
      if (e[0] == u && e[1] == v) return true;
    }
    return false;
  }

  void Apply(const EdgeEdit& edit) {
    if (edit.kind == EdgeEdit::kDelete) {
      edges.erase(std::remove_if(edges.begin(), edges.end(),
                                 [&](const std::array<uint32_t, 3>& e) {
                                   return e[0] == edit.u && e[1] == edit.v;
                                 }),
                  edges.end());
      return;
    }
    if (!HasTriple(edit.u, edit.v, edit.label)) {
      edges.push_back({edit.u, edit.v, edit.label});
      num_nodes = std::max(num_nodes, std::max(edit.u, edit.v) + 1);
    }
  }

  Hypergraph ToHypergraph() const {
    Hypergraph g(num_nodes);
    for (const auto& e : edges) g.AddSimpleEdge(e[0], e[1], e[2]);
    return g;
  }

  std::vector<uint64_t> OutOf(uint32_t u) const {
    std::vector<uint64_t> out;
    for (const auto& e : edges) {
      if (e[0] == u) out.push_back(e[1]);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
};

// A deterministic mixed edit stream: ~60% adds of absent pairs, ~30%
// kills of live pairs, ~10% kill-then-re-add (the resurrection case).
// Mutates `truth` in step so it stays the ground truth.
std::vector<EdgeEdit> MakeEdits(TruthCorpus* truth, std::mt19937* rng,
                                size_t count,
                                const std::vector<uint32_t>& labels) {
  std::vector<EdgeEdit> edits;
  uint32_t n = truth->num_nodes;
  auto random_label = [&]() -> uint32_t {
    return labels[(*rng)() % labels.size()];
  };
  while (edits.size() < count) {
    uint32_t roll = (*rng)() % 10;
    if (roll < 6 || truth->edges.empty()) {
      uint32_t u = (*rng)() % n, v = (*rng)() % n;
      if (u == v) continue;
      edits.push_back(EdgeEdit::Add(u, v, random_label()));
    } else {
      const auto& victim = truth->edges[(*rng)() % truth->edges.size()];
      edits.push_back(EdgeEdit::Delete(victim[0], victim[1]));
      if (roll == 9) {
        edits.push_back(
            EdgeEdit::Add(victim[0], victim[1], random_label()));
      }
    }
  }
  for (const EdgeEdit& e : edits) truth->Apply(e);
  return edits;
}

std::vector<uint32_t> LabelsOf(const Hypergraph& g) {
  std::vector<uint32_t> labels;
  for (const HEdge& e : g.edges()) labels.push_back(e.label);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  if (labels.empty()) labels.push_back(0);
  return labels;
}

using LabeledEdge = std::pair<Label, std::vector<NodeId>>;

std::vector<LabeledEdge> LabeledEdgeSet(const Hypergraph& g) {
  std::vector<LabeledEdge> edges;
  for (const HEdge& e : g.edges()) edges.push_back({e.label, e.att});
  std::sort(edges.begin(), edges.end());
  return edges;
}

std::vector<std::pair<NodeId, NodeId>> UnlabeledEdgeSet(const Hypergraph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const HEdge& e : g.edges()) {
    if (e.att.size() == 2) edges.push_back({e.att[0], e.att[1]});
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path(::testing::TempDir() + "grepair_dyn_" + tag) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::string path;
};

// Compares every query surface the codec supports on `edited` (the
// overlay path) against `fresh` (a from-scratch compression of the
// mutated graph): out/in-neighbor singles over all nodes, one full
// batch, a reachability sweep, with `threads` workers issuing the
// singles concurrently when threads > 1.
void ExpectQueriesAgree(api::CompressedRep* edited,
                        api::CompressedRep* fresh, uint32_t caps,
                        int threads, const std::string& tag) {
  ASSERT_EQ(edited->num_nodes(), fresh->num_nodes()) << tag;
  uint64_t n = edited->num_nodes();

  if (caps & api::kNeighborQueries) {
    std::atomic<int> failures{0};
    auto sweep = [&](int stride) {
      for (uint64_t v = static_cast<uint64_t>(stride); v < n;
           v += static_cast<uint64_t>(threads)) {
        auto eo = edited->OutNeighbors(v);
        auto fo = fresh->OutNeighbors(v);
        if (!eo.ok() || !fo.ok() || eo.value() != fo.value()) {
          ++failures;
          continue;
        }
        auto ei = edited->InNeighbors(v);
        auto fi = fresh->InNeighbors(v);
        if (!ei.ok() || !fi.ok() || ei.value() != fi.value()) ++failures;
      }
    };
    if (threads <= 1) {
      sweep(0);
    } else {
      std::vector<std::thread> workers;
      for (int t = 0; t < threads; ++t) workers.emplace_back(sweep, t);
      for (auto& w : workers) w.join();
    }
    EXPECT_EQ(failures.load(), 0) << tag << " (singles)";

    std::vector<uint64_t> all(n);
    for (uint64_t v = 0; v < n; ++v) all[v] = v;
    auto eb = edited->OutNeighborsBatch(all);
    auto fb = fresh->OutNeighborsBatch(all);
    ASSERT_TRUE(eb.ok()) << tag << ": " << eb.status().ToString();
    ASSERT_TRUE(fb.ok()) << tag << ": " << fb.status().ToString();
    EXPECT_EQ(eb.value(), fb.value()) << tag << " (batch)";
  }

  if (caps & api::kReachabilityQueries) {
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    for (uint64_t i = 0; i < 40 && n > 1; ++i) {
      pairs.push_back({(i * 7) % n, (i * 13 + 1) % n});
    }
    for (const auto& p : pairs) {
      auto er = edited->Reachable(p.first, p.second);
      auto fr = fresh->Reachable(p.first, p.second);
      ASSERT_TRUE(er.ok()) << tag << ": " << er.status().ToString();
      ASSERT_TRUE(fr.ok()) << tag << ": " << fr.status().ToString();
      EXPECT_EQ(er.value(), fr.value())
          << tag << " reach " << p.first << "->" << p.second;
    }
    auto erb = edited->ReachableBatch(pairs);
    auto frb = fresh->ReachableBatch(pairs);
    ASSERT_TRUE(erb.ok()) << tag << ": " << erb.status().ToString();
    ASSERT_TRUE(frb.ok()) << tag << ": " << frb.status().ToString();
    EXPECT_EQ(erb.value(), frb.value()) << tag << " (reach batch)";
  }
}

void ExpectDecompressAgrees(api::CompressedRep* edited,
                            api::CompressedRep* fresh, bool labeled,
                            const std::string& tag) {
  auto eg = edited->Decompress();
  auto fg = fresh->Decompress();
  ASSERT_TRUE(eg.ok()) << tag << ": " << eg.status().ToString();
  ASSERT_TRUE(fg.ok()) << tag << ": " << fg.status().ToString();
  EXPECT_EQ(eg.value().num_nodes(), fg.value().num_nodes()) << tag;
  if (labeled) {
    EXPECT_EQ(LabeledEdgeSet(eg.value()), LabeledEdgeSet(fg.value())) << tag;
  } else {
    EXPECT_EQ(UnlabeledEdgeSet(eg.value()), UnlabeledEdgeSet(fg.value()))
        << tag;
  }
}

// The tentpole property, per base codec: overlay edits == recompress.
class DynamicDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(DynamicDifferential, EditStreamMatchesRecompress) {
  auto sharded = api::CodecRegistry::Create("sharded:" + GetParam());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  bool labeled = sharded.value()->capabilities() & api::kSupportsLabels;
  uint32_t caps = sharded.value()->capabilities();

  std::vector<std::pair<std::string, GeneratedGraph>> datasets;
  datasets.push_back({"er", ErdosRenyi(80, 240, 17)});
  datasets.push_back({"rdf", RdfEntities(40, 6, 12, 19)});  // labeled

  api::CodecOptions options;
  options.Set("shards", "4");
  options.Set("threads", "2");

  bool ran_any = false;
  for (auto& [name, gg] : datasets) {
    SCOPED_TRACE(name);
    auto rep = sharded.value()->Compress(gg.graph, gg.alphabet, options);
    if (!rep.ok()) {
      EXPECT_EQ(rep.status().code(), StatusCode::kInvalidArgument)
          << rep.status().ToString();
      continue;
    }
    ran_any = true;
    auto* edited = dynamic_cast<shard::ShardedRep*>(rep.value().get());
    ASSERT_NE(edited, nullptr);

    TruthCorpus truth = TruthCorpus::FromGraph(gg.graph);
    std::vector<uint32_t> labels = LabelsOf(gg.graph);
    std::mt19937 rng(4242);
    // Three chunks so later edits stack on an existing overlay.
    for (int chunk = 0; chunk < 3; ++chunk) {
      auto edits = MakeEdits(&truth, &rng, 30, labels);
      auto applied = edited->ApplyEdits(edits);
      ASSERT_TRUE(applied.ok()) << applied.ToString();
    }
    ASSERT_GT(edited->query_stats().overlay_edits, 0u);

    auto fresh = sharded.value()->Compress(truth.ToHypergraph(),
                                           gg.alphabet, options);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

    ExpectQueriesAgree(edited, fresh.value().get(), caps, 1,
                       name + "/overlay/1t");
    ExpectQueriesAgree(edited, fresh.value().get(), caps, 8,
                       name + "/overlay/8t");
    ExpectDecompressAgrees(edited, fresh.value().get(), labeled,
                           name + "/overlay");
    // Triangulate the out-neighbor answers against the raw edge list.
    if (caps & api::kNeighborQueries) {
      for (uint32_t v = 0; v < truth.num_nodes; v += 9) {
        auto out = edited->OutNeighbors(v);
        ASSERT_TRUE(out.ok());
        EXPECT_EQ(out.value(), truth.OutOf(v)) << name << " node " << v;
      }
    }

    // Fold the overlay into the shard grammars and re-prove all of it:
    // folded answers must be indistinguishable from overlay answers.
    auto folded = edited->FoldOverlay();
    ASSERT_TRUE(folded.ok()) << folded.ToString();
    ExpectQueriesAgree(edited, fresh.value().get(), caps, 1,
                       name + "/folded/1t");
    ExpectQueriesAgree(edited, fresh.value().get(), caps, 8,
                       name + "/folded/8t");
    ExpectDecompressAgrees(edited, fresh.value().get(), labeled,
                           name + "/folded");
  }
  EXPECT_TRUE(ran_any) << GetParam() << " rejected every dataset";
}

INSTANTIATE_TEST_SUITE_P(BaseCodecs, DynamicDifferential,
                         ::testing::ValuesIn(api::CodecRegistry::BaseNames()),
                         [](const auto& suite_info) {
                           std::string name = suite_info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// Edits may reference nodes past the base corpus: num_nodes grows,
// queries on fresh nodes answer, and recompress still agrees.
TEST(DynamicCorpusTest, FreshNodeAddsGrowTheCorpus) {
  GeneratedGraph gg = BarabasiAlbert(60, 3, 23);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "3");
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto* edited = dynamic_cast<shard::ShardedRep*>(rep.value().get());
  uint32_t n = gg.graph.num_nodes();

  TruthCorpus truth = TruthCorpus::FromGraph(gg.graph);
  std::vector<EdgeEdit> edits = {EdgeEdit::Add(5, n + 4),
                                 EdgeEdit::Add(n + 4, n + 9),
                                 EdgeEdit::Add(n + 9, 0)};
  for (const auto& e : edits) truth.Apply(e);
  ASSERT_TRUE(edited->ApplyEdits(edits).ok());
  EXPECT_EQ(edited->num_nodes(), n + 10);

  auto fresh = codec->Compress(truth.ToHypergraph(), gg.alphabet, options);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ExpectQueriesAgree(edited, fresh.value().get(), codec->capabilities(), 1,
                     "fresh-nodes");
  EXPECT_EQ(edited->OutNeighbors(n + 9).ValueOrDie(),
            (std::vector<uint64_t>{0}));
  // Folding keeps fresh-node edges residual (no shard owns them) but
  // must not lose them.
  ASSERT_TRUE(edited->FoldOverlay().ok());
  EXPECT_EQ(edited->OutNeighbors(n + 4).ValueOrDie(),
            (std::vector<uint64_t>{static_cast<uint64_t>(n) + 9}));
}

// ApplyEdits folds automatically once the overlay outgrows the byte
// budget; with a single shard every in-range edit is fold-eligible, so
// the overlay must drain to empty and the fold counters move.
TEST(DynamicCorpusTest, BudgetTriggersAutomaticFold) {
  GeneratedGraph gg = ErdosRenyi(70, 210, 31);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "1");
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto* edited = dynamic_cast<shard::ShardedRep*>(rep.value().get());
  edited->set_overlay_budget_bytes(1);

  TruthCorpus truth = TruthCorpus::FromGraph(gg.graph);
  std::mt19937 rng(777);
  std::vector<uint32_t> labels = LabelsOf(gg.graph);
  for (int chunk = 0; chunk < 4; ++chunk) {
    auto edits = MakeEdits(&truth, &rng, 10, labels);
    ASSERT_TRUE(edited->ApplyEdits(edits).ok());
  }
  auto stats = edited->query_stats();
  EXPECT_GT(stats.shard_folds, 0u);
  EXPECT_GT(stats.folded_edits, 0u);
  EXPECT_EQ(stats.overlay_edits, 0u) << "single-shard fold must drain";

  auto fresh = codec->Compress(truth.ToHypergraph(), gg.alphabet, options);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ExpectQueriesAgree(edited, fresh.value().get(), codec->capabilities(), 4,
                     "auto-fold");
}

// GRSHARD3 files end to end: a two-link chain written to disk reopens
// through api::OpenVersioned onto the same corpus; every lineage or
// payload tamper fails closed; a delta is far smaller than the base.
TEST(DynamicCorpusTest, DeltaChainRoundTripsThroughFiles) {
  ScratchDir scratch("chain");
  GeneratedGraph gg = ErdosRenyi(90, 270, 37);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "4");
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto* base_rep = dynamic_cast<shard::ShardedRep*>(rep.value().get());

  std::string base_path = scratch.path + "/base.grc";
  auto container =
      api::WrapCodecPayload("sharded:grepair", base_rep->SerializeV2());
  ASSERT_TRUE(WriteFileBytesAtomic(base_path, SpanOf(container)).ok());

  auto hash_of = [](const std::string& path) {
    auto file = MmapFile::Open(path);
    EXPECT_TRUE(file.ok());
    ByteSpan span = file.value()->span();
    return std::make_pair(HashBytes(span.data, span.size),
                          static_cast<uint64_t>(span.size));
  };

  TruthCorpus truth = TruthCorpus::FromGraph(gg.graph);
  std::mt19937 rng(91);
  std::vector<uint32_t> labels = LabelsOf(gg.graph);

  // Link 1: open the base file, edit, write d1.
  std::string d1 = scratch.path + "/v1.grs3";
  {
    auto opened = api::OpenVersioned(base_path, {});
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto* sharded = dynamic_cast<shard::ShardedRep*>(opened.value().get());
    auto edits = MakeEdits(&truth, &rng, 25, labels);
    ASSERT_TRUE(sharded->ApplyEdits(edits).ok());
    auto [h, s] = hash_of(base_path);
    auto delta = sharded->BuildDelta(h, s);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    auto bytes = shard::EncodeDeltaContainer(delta.value());
    ASSERT_TRUE(WriteFileBytesAtomic(d1, SpanOf(bytes)).ok());
    // Shipping the diff must beat re-shipping the whole base.
    EXPECT_LT(bytes.size(), container.size() / 2);
  }

  // Link 2: open base+d1 (forcing a fold first so d1 carries shards),
  // edit again, write d2.
  std::string d2 = scratch.path + "/v2.grs3";
  {
    auto opened = api::OpenVersioned(base_path, {d1});
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto* sharded = dynamic_cast<shard::ShardedRep*>(opened.value().get());
    ASSERT_TRUE(sharded->FoldOverlay().ok());
    auto edits = MakeEdits(&truth, &rng, 25, labels);
    ASSERT_TRUE(sharded->ApplyEdits(edits).ok());
    auto [h, s] = hash_of(d1);
    auto delta = sharded->BuildDelta(h, s);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    ASSERT_TRUE(WriteFileBytesAtomic(
                    d2, SpanOf(shard::EncodeDeltaContainer(delta.value())))
                    .ok());
  }

  // The full chain reproduces the mutated corpus exactly.
  auto chained = api::OpenVersioned(base_path, {d1, d2});
  ASSERT_TRUE(chained.ok()) << chained.status().ToString();
  auto fresh = codec->Compress(truth.ToHypergraph(), gg.alphabet, options);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ExpectQueriesAgree(chained.value().get(), fresh.value().get(),
                     codec->capabilities(), 8, "chain");
  ExpectDecompressAgrees(chained.value().get(), fresh.value().get(),
                         /*labeled=*/true, "chain");

  // Lineage violations fail closed: a skipped link, a tampered delta,
  // a delta aimed at a non-sharded base.
  auto skipped = api::OpenVersioned(base_path, {d2});
  EXPECT_EQ(skipped.status().code(), StatusCode::kCorruption);

  auto d1_bytes = ReadFileBytes(d1).ValueOrDie();
  d1_bytes[d1_bytes.size() / 2] ^= 0x20;
  std::string d1_bad = scratch.path + "/v1_bad.grs3";
  ASSERT_TRUE(WriteFileBytesAtomic(d1_bad, SpanOf(d1_bytes)).ok());
  auto tampered = api::OpenVersioned(base_path, {d1_bad, d2});
  EXPECT_EQ(tampered.status().code(), StatusCode::kCorruption);

  auto plain = api::CodecRegistry::Create("grepair").ValueOrDie();
  auto plain_rep = plain->Compress(gg.graph, gg.alphabet);
  ASSERT_TRUE(plain_rep.ok());
  std::string plain_path = scratch.path + "/plain.grc";
  ASSERT_TRUE(WriteFileBytesAtomic(
                  plain_path,
                  SpanOf(api::WrapCodecPayload(
                      "grepair", plain_rep.value()->Serialize())))
                  .ok());
  auto not_sharded = api::OpenVersioned(plain_path, {d1});
  EXPECT_EQ(not_sharded.status().code(), StatusCode::kInvalidArgument);
}

// A process killed mid-fold must never damage the base container:
// folds are in-memory swaps and delta writes are tmp+rename, so the
// base file reopens bit-identical afterwards.
TEST(DynamicCorpusTest, KillMidFoldLeavesBaseIntact) {
  ScratchDir scratch("crash");
  GeneratedGraph gg = ErdosRenyi(80, 240, 41);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "3");
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  std::string base_path = scratch.path + "/base.grc";
  ASSERT_TRUE(
      WriteFileBytesAtomic(
          base_path,
          SpanOf(api::WrapCodecPayload(
              "sharded:grepair",
              dynamic_cast<shard::ShardedRep*>(rep.value().get())
                  ->SerializeV2())))
          .ok());
  auto before = ReadFileBytes(base_path).ValueOrDie();

  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: fold continuously against the mapped base until killed.
    auto opened = api::OpenVersioned(base_path, {});
    if (!opened.ok()) _exit(3);
    auto* sharded = dynamic_cast<shard::ShardedRep*>(opened.value().get());
    sharded->set_overlay_budget_bytes(1);  // every ApplyEdits folds
    uint32_t n = static_cast<uint32_t>(sharded->num_nodes());
    for (uint32_t i = 0;; ++i) {
      std::vector<EdgeEdit> edits = {
          EdgeEdit::Add(i % n, (i * 7 + 1) % n),
          EdgeEdit::Delete((i * 3) % n, (i * 5 + 2) % n)};
      if (edits[0].u == edits[0].v) edits[0].v = (edits[0].v + 1) % n;
      if (edits[0].u == edits[0].v) continue;
      (void)sharded->ApplyEdits(edits);
    }
    _exit(0);  // unreachable
  }
  // Give the child time to get folds in flight, then kill it cold.
  usleep(60 * 1000);
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  auto after = ReadFileBytes(base_path).ValueOrDie();
  EXPECT_EQ(before, after) << "fold mutated the base container";
  auto reopened = api::OpenVersioned(base_path, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened.value()->OutNeighbors(0).ok());
}

// Torn-write regression for the atomic file writer every container and
// sidecar write funnels through: overwrites are all-or-nothing with no
// stray temp files, and a failed write never creates the target.
TEST(DynamicCorpusTest, AtomicWritesLeaveNoTornOrStrayFiles) {
  ScratchDir scratch("atomic");
  std::string target = scratch.path + "/c.bin";
  std::vector<uint8_t> old_bytes(1024, 0xAA);
  ASSERT_TRUE(WriteFileBytesAtomic(target, SpanOf(old_bytes)).ok());
  std::vector<uint8_t> new_bytes(4096, 0xBB);
  ASSERT_TRUE(WriteFileBytesAtomic(target, SpanOf(new_bytes)).ok());
  EXPECT_EQ(ReadFileBytes(target).ValueOrDie(), new_bytes);
  // The directory holds exactly the target — no .tmp leftovers.
  size_t entries = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(scratch.path)) {
    ++entries;
    EXPECT_EQ(entry.path().filename().string(), "c.bin");
  }
  EXPECT_EQ(entries, 1u);

  // Failure path: a write into a missing directory errors and leaves
  // nothing behind (in particular no half-written target to mistake
  // for a container later).
  std::string missing = scratch.path + "/nodir/c.bin";
  EXPECT_FALSE(WriteFileBytesAtomic(missing, SpanOf(new_bytes)).ok());
  EXPECT_FALSE(std::filesystem::exists(scratch.path + "/nodir"));

  // The legacy entry point routes through the same atomic path.
  ASSERT_TRUE(WriteFileBytes(target, old_bytes).ok());
  EXPECT_EQ(ReadFileBytes(target).ValueOrDie(), old_bytes);
}

// A v1 (eager) container has no directory checksum, so it can neither
// anchor nor accept deltas — both directions must reject, not corrupt.
TEST(DynamicCorpusTest, EagerContainersRejectDeltas) {
  GeneratedGraph gg = BarabasiAlbert(50, 3, 43);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "2");
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  ASSERT_TRUE(rep.ok());
  auto* sharded = dynamic_cast<shard::ShardedRep*>(rep.value().get());
  // A freshly compressed rep was never opened from a v2 container.
  EXPECT_EQ(sharded->directory_checksum(), 0u);
  EXPECT_EQ(sharded->BuildDelta(1, 2).status().code(),
            StatusCode::kInvalidArgument);
  shard::DeltaContainer delta;
  delta.base_dir_checksum = 12345;
  delta.num_nodes = gg.graph.num_nodes();
  EXPECT_EQ(sharded->ApplyDelta(delta).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace grepair
