// The placement layer end to end: RankByHeat's deterministic ordering,
// the `.grdir` sidecar envelope (v2 with histogram + epoch, v1
// back-compat, fail-closed on damage), the server-side
// PlacementController's budgeted pin set and its STATS-visible flags,
// ShardedRep::ApplyPlacement on a real mmap-backed container, the
// STATS body round-trip carrying epoch + pinned flags, and the sidecar
// a remote open persists.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/api/grepair_api.h"
#include "src/serve/placement.h"
#include "src/serve/pool.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"
#include "src/serve/stats.h"
#include "src/util/byte_io.h"
#include "src/util/hashing.h"
#include "src/util/mmap_file.h"

namespace grepair {
namespace {

std::vector<uint8_t> CompressSharded(const GeneratedGraph& gg, int shards) {
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", std::to_string(shards));
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  EXPECT_TRUE(rep.ok()) << rep.status().ToString();
  return dynamic_cast<shard::ShardedRep*>(rep.value().get())->SerializeV2();
}

std::vector<shard::ShardDirEntry> DirectoryRows(
    const std::vector<uint8_t>& container) {
  uint64_t dir_off = 0;
  auto region = shard::LocateV2DirectoryRegion(SpanOf(container), &dir_off);
  EXPECT_TRUE(region.ok());
  auto dir = shard::ParseV2Directory(region.value(), dir_off);
  EXPECT_TRUE(dir.ok());
  return std::move(dir).ValueOrDie().rows;
}

// Indices of shards that actually carry payload bytes.
std::vector<size_t> DataShards(
    const std::vector<shard::ShardDirEntry>& rows) {
  std::vector<size_t> data;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].length > 0) data.push_back(i);
  }
  return data;
}

struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path(::testing::TempDir() + "grepair_placement_" + tag) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::string path;
};

TEST(PlacementTest, RankByHeatOrdersByHitsThenIdAndDropsCold) {
  // Hits: ties break by ascending shard id; zero-hit shards vanish.
  std::vector<uint64_t> histogram = {5, 0, 7, 5, 0, 7};
  EXPECT_EQ(serve::RankByHeat(histogram),
            (std::vector<size_t>{2, 5, 0, 3}));
  EXPECT_TRUE(serve::RankByHeat({}).empty());
  EXPECT_TRUE(serve::RankByHeat({0, 0, 0}).empty());
}

TEST(PlacementTest, DirSidecarV2RoundTripAndFailClosed) {
  ScratchDir scratch("sidecar");
  serve::DirSidecar sidecar;
  sidecar.dir_off = 12345;
  sidecar.raw_directory = {1, 2, 3, 4, 5, 6, 7};
  sidecar.histogram_epoch = 99;
  sidecar.histogram = {0, 17, 3};

  std::string path = serve::DirSidecarPath(scratch.path, "web");
  EXPECT_EQ(path, scratch.path + "/web.grdir");
  EXPECT_EQ(serve::DirSidecarPath(scratch.path, ""),
            scratch.path + "/_default.grdir");

  serve::SaveDirSidecar(path, sidecar);
  auto loaded = serve::LoadDirSidecar(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().dir_off, sidecar.dir_off);
  EXPECT_EQ(loaded.value().raw_directory, sidecar.raw_directory);
  EXPECT_EQ(loaded.value().histogram_epoch, sidecar.histogram_epoch);
  EXPECT_EQ(loaded.value().histogram, sidecar.histogram);

  // Any flipped byte fails the checksum (or, for trailer bytes, the
  // layout) — a tampered sidecar never feeds the warming path.
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  for (size_t i = 0; i < bytes.value().size(); i += 5) {
    std::vector<uint8_t> mutated = bytes.value();
    mutated[i] ^= 0x01;
    ASSERT_TRUE(WriteFileBytes(path, mutated).ok());
    auto bad = serve::LoadDirSidecar(path);
    EXPECT_FALSE(bad.ok()) << "byte " << i << " flip was accepted";
  }
  // Truncation too.
  std::vector<uint8_t> truncated = bytes.value();
  truncated.resize(truncated.size() / 2);
  ASSERT_TRUE(WriteFileBytes(path, truncated).ok());
  EXPECT_FALSE(serve::LoadDirSidecar(path).ok());
}

TEST(PlacementTest, DirSidecarV1LoadsWithEmptyHistogram) {
  ScratchDir scratch("sidecar_v1");
  // Hand-build the v1 envelope (directory only) the pre-histogram
  // code wrote: the loader must keep accepting it.
  std::vector<uint8_t> raw = {9, 8, 7, 6};
  std::vector<uint8_t> body;
  PutU32LE(0x43445247, &body);  // "GRDC"
  PutU32LE(1, &body);           // version 1
  PutU64LE(777, &body);         // dir_off
  PutU32LE(static_cast<uint32_t>(raw.size()), &body);
  body.insert(body.end(), raw.begin(), raw.end());
  PutU64LE(HashBytes(body.data(), body.size()), &body);
  std::string path = serve::DirSidecarPath(scratch.path, "old");
  ASSERT_TRUE(WriteFileBytes(path, body).ok());

  auto loaded = serve::LoadDirSidecar(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().dir_off, 777u);
  EXPECT_EQ(loaded.value().raw_directory, raw);
  EXPECT_EQ(loaded.value().histogram_epoch, 0u);
  EXPECT_TRUE(loaded.value().histogram.empty());
}

TEST(PlacementTest, ControllerPinsHotFirstUnderBudgetDeterministically) {
  GeneratedGraph gg = BarabasiAlbert(120, 3, 211);
  std::vector<uint8_t> bytes = CompressSharded(gg, 5);
  serve::CorpusRegistry registry;
  ASSERT_TRUE(registry.AddBytes("g", SpanOf(bytes)).ok());
  const serve::Corpus& corpus = registry.at(0);
  auto data = DataShards(corpus.rows);
  ASSERT_GE(data.size(), 3u);
  size_t s0 = data[0], s1 = data[1], s2 = data[2];

  // Phase A: two hot shards, room for everything → both pinned.
  corpus.shard_hits[s0].store(5);
  corpus.shard_hits[s1].store(3);
  serve::PlacementController controller(/*budget_bytes=*/1ull << 40);
  controller.Refresh(registry);
  EXPECT_EQ(controller.shards_pinned(), 2u);
  EXPECT_EQ(controller.pinned_bytes(),
            corpus.rows[s0].length + corpus.rows[s1].length);
  EXPECT_EQ(corpus.shard_pinned[s0].load(), 1);
  EXPECT_EQ(corpus.shard_pinned[s1].load(), 1);
  EXPECT_EQ(corpus.shard_pinned[s2].load(), 0);

  // Idempotent for an unchanged histogram.
  controller.Refresh(registry);
  EXPECT_EQ(controller.shards_pinned(), 2u);

  // Phase B: the heat moves, the placement follows — s1 falls out,
  // s2 comes in.
  corpus.shard_hits[s1].store(0);
  corpus.shard_hits[s2].store(7);
  controller.Refresh(registry);
  EXPECT_EQ(controller.shards_pinned(), 2u);
  EXPECT_EQ(controller.pinned_bytes(),
            corpus.rows[s0].length + corpus.rows[s2].length);
  EXPECT_EQ(corpus.shard_pinned[s0].load(), 1);
  EXPECT_EQ(corpus.shard_pinned[s1].load(), 0);
  EXPECT_EQ(corpus.shard_pinned[s2].load(), 1);

  // Phase C: a budget of exactly one hottest shard pins that shard
  // alone (greedy skips anything that would overflow).
  serve::PlacementController tight(corpus.rows[s2].length);
  tight.Refresh(registry);
  EXPECT_EQ(tight.shards_pinned(), 1u);
  EXPECT_EQ(tight.pinned_bytes(), corpus.rows[s2].length);

  // A zero budget clears everything it owns; the wide controller's
  // flags were overwritten by the tight one, so re-assert via a final
  // wide refresh then a zero-budget drain.
  controller.Refresh(registry);
  serve::PlacementController off(0);
  off.Refresh(registry);
  EXPECT_EQ(off.shards_pinned(), 0u);
  EXPECT_EQ(off.pinned_bytes(), 0u);
}

TEST(PlacementTest, ApplyPlacementPinsLocalContainerUnderBudget) {
  ScratchDir scratch("apply");
  GeneratedGraph gg = BarabasiAlbert(130, 3, 223);
  std::vector<uint8_t> bytes = CompressSharded(gg, 6);
  auto rows = DirectoryRows(bytes);
  auto data = DataShards(rows);
  ASSERT_GE(data.size(), 3u);

  std::string path = scratch.path + "/g.grc";
  ASSERT_TRUE(
      WriteFileBytes(path, api::WrapCodecPayload("sharded:grepair", bytes))
          .ok());
  auto opened = api::OpenCompressedFile(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto* sharded = dynamic_cast<shard::ShardedRep*>(opened.value().get());
  ASSERT_NE(sharded, nullptr);

  // Synthetic histogram: the first three data shards are hot, in
  // order. Budget = the first two payloads → exactly those pinned.
  std::vector<uint64_t> histogram(sharded->num_shards(), 0);
  histogram[data[0]] = 3;
  histogram[data[1]] = 2;
  histogram[data[2]] = 1;
  std::vector<size_t> ranked = serve::RankByHeat(histogram);
  ASSERT_EQ(ranked,
            (std::vector<size_t>{data[0], data[1], data[2]}));

  uint64_t budget = rows[data[0]].length + rows[data[1]].length;
  auto outcome = sharded->ApplyPlacement(ranked, budget);
  EXPECT_EQ(outcome.shards_pinned, 2u);
  EXPECT_EQ(outcome.pinned_bytes, budget);
  auto stats = sharded->query_stats();
  EXPECT_EQ(stats.shards_pinned, 2u);
  EXPECT_EQ(stats.pinned_bytes, budget);

  // Re-applying the same placement is a no-op; answers stay correct
  // while pinned.
  outcome = sharded->ApplyPlacement(ranked, budget);
  EXPECT_EQ(outcome.shards_pinned, 2u);
  auto local = shard::ShardedRep::Deserialize(SpanOf(bytes));
  ASSERT_TRUE(local.ok());
  for (uint64_t v = 0; v < gg.graph.num_nodes(); ++v) {
    auto got = sharded->OutNeighbors(v);
    auto want = local.value()->OutNeighbors(v);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(got.value(), want.value());
  }

  // An empty ranking drains every pin.
  outcome = sharded->ApplyPlacement({}, 0);
  EXPECT_EQ(outcome.shards_pinned, 0u);
  EXPECT_EQ(outcome.pinned_bytes, 0u);
  EXPECT_EQ(sharded->query_stats().shards_pinned, 0u);
}

TEST(PlacementTest, StatsBodyRoundTripsEpochAndPinnedFlags) {
  serve::ServerStatsSnapshot snapshot;
  snapshot.connections = 4;
  snapshot.requests = 100;
  snapshot.bytes_sent = 5000;
  snapshot.errors = 1;
  serve::CorpusServeStats corpus;
  corpus.name = "web";
  corpus.inner_name = "grepair";
  corpus.num_nodes = 42;
  corpus.requests = 17;
  corpus.histogram_epoch = 17;
  corpus.shard_hits = {9, 0, 8};
  corpus.shard_pinned = {1, 0, 1};
  snapshot.corpora.push_back(corpus);

  std::vector<uint8_t> body = serve::EncodeStatsBody(7, snapshot);
  uint64_t req_id = 0;
  auto decoded = serve::DecodeStatsBody(SpanOf(body), &req_id);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(req_id, 7u);
  ASSERT_EQ(decoded.value().corpora.size(), 1u);
  const auto& got = decoded.value().corpora[0];
  EXPECT_EQ(got.name, "web");
  EXPECT_EQ(got.histogram_epoch, 17u);
  EXPECT_EQ(got.shard_hits, corpus.shard_hits);
  EXPECT_EQ(got.shard_pinned, corpus.shard_pinned);

  // A pinned flag that is neither 0 nor 1 is wire damage.
  std::vector<uint8_t> mutated = body;
  mutated.back() = 2;  // the last field is the last shard's pin flag
  EXPECT_EQ(
      serve::DecodeStatsBody(SpanOf(mutated), &req_id).status().code(),
      StatusCode::kCorruption);
  // So is a trailing byte.
  mutated = body;
  mutated.push_back(0);
  EXPECT_FALSE(serve::DecodeStatsBody(SpanOf(mutated), &req_id).ok());
}

TEST(PlacementTest, RemoteOpenPersistsHistogramSidecar) {
  ScratchDir scratch("remote_sidecar");
  GeneratedGraph gg = BarabasiAlbert(90, 3, 227);
  std::vector<uint8_t> bytes = CompressSharded(gg, 4);
  serve::CorpusRegistry registry;
  ASSERT_TRUE(registry.AddBytes("g", SpanOf(bytes)).ok());
  auto server = serve::ShardServer::Start(std::move(registry));
  ASSERT_TRUE(server.ok());

  serve::OpenOptions options;
  options.ssd_cache_dir = scratch.path + "/cache";

  // First client: faults shards, teaching the server the histogram.
  {
    auto rep = serve::OpenRemoteContainer(
        server.value()->host_port() + "/g", options);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    for (uint64_t v = 0; v < gg.graph.num_nodes(); ++v) {
      ASSERT_TRUE(rep.value()->OutNeighbors(v).ok());
    }
  }
  // Second open: fetches fresh STATS (now non-empty) and persists the
  // v2 sidecar beside the tier.
  {
    auto rep = serve::OpenRemoteContainer(
        server.value()->host_port() + "/g", options);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  }
  auto sidecar = serve::LoadDirSidecar(
      serve::DirSidecarPath(options.ssd_cache_dir, "g"));
  ASSERT_TRUE(sidecar.ok()) << sidecar.status().ToString();
  EXPECT_GT(sidecar.value().histogram_epoch, 0u);
  auto rows = DirectoryRows(bytes);
  ASSERT_EQ(sidecar.value().histogram.size(), rows.size());
  uint64_t total_hits = 0;
  for (uint64_t h : sidecar.value().histogram) total_hits += h;
  EXPECT_GT(total_hits, 0u);
  // The persisted directory still parses and matches the container's.
  auto parsed = shard::ParseV2Directory(
      SpanOf(sidecar.value().raw_directory), sidecar.value().dir_off);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().rows.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(parsed.value().rows[i].checksum, rows[i].checksum);
  }
}

}  // namespace
}  // namespace grepair
