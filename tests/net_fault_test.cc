// Fault injection for the shard-serving path: a misbehaving-server
// shim feeds the client every class of wire-level lie — truncated
// frames, bit-flipped payloads, wrong shard ids, premature closes,
// stalled writes, garbage frames, corrupted frame checksums — and
// every one must surface as a clean Status (kCorruption or
// kUnavailable), never a crash, hang, or silently wrong answer. The
// real server is also attacked from the client side (garbage bytes,
// out-of-range requests, silent connections) and must keep serving
// well-behaved peers. Runs under the ASan/UBSan and TSan CI legs.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/api/grepair_api.h"
#include "src/net/frame.h"
#include "src/net/remote_source.h"
#include "src/net/shard_server.h"

namespace grepair {
namespace {

// A small real container to lie about: 2 data shards + cut shard.
std::vector<uint8_t> MakeContainer() {
  GeneratedGraph gg = BarabasiAlbert(60, 3, 53);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "2");
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  EXPECT_TRUE(rep.ok()) << rep.status().ToString();
  return dynamic_cast<shard::ShardedRep*>(rep.value().get())->SerializeV2();
}

enum class Fault {
  kNone,               // behave (baseline for the shim itself)
  kTruncatedFrame,     // half a shard frame, then close
  kBitFlippedPayload,  // well-framed payload with one flipped bit
  kWrongShardId,       // echoes index+1
  kPrematureClose,     // close instead of answering GetShard
  kStalledWrite,       // sleep past the client's timeout
  kGarbageFrame,       // non-frame bytes
  kBadFrameChecksum,   // valid frame, last checksum byte flipped
  kCorruptDirectory,   // truncated directory at connect time
};

// Serves the real directory, then applies `fault` to GetShard (or, for
// kCorruptDirectory, to GetDir). Single-connection, joins on Stop.
class MisbehavingServer {
 public:
  MisbehavingServer(std::vector<uint8_t> container, Fault fault)
      : container_(std::move(container)), fault_(fault) {
    uint64_t dir_off = 0;
    auto region =
        shard::LocateV2DirectoryRegion(SpanOf(container_), &dir_off);
    EXPECT_TRUE(region.ok());
    dir_off_ = dir_off;
    dir_region_ = region.value();
    auto rows = shard::ParseV2Directory(dir_region_, dir_off_);
    EXPECT_TRUE(rows.ok());
    rows_ = std::move(rows).ValueOrDie().rows;
    auto listener = Socket::ListenTcp("127.0.0.1", 0, &port_);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    listener_ = std::move(listener).ValueOrDie();
    thread_ = std::thread([this] { Run(); });
  }

  ~MisbehavingServer() {
    stopping_.store(true);
    // Shutdown only: Close() writes the fd and would race the server
    // thread's Accept; descriptors close with the Socket members
    // after the join.
    listener_.ShutdownBoth();
    {
      // conn_ is moved into by the server thread between connections;
      // the shutdown that unblocks its recv must not race that.
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_.ShutdownBoth();
    }
    if (thread_.joinable()) thread_.join();
  }

  std::string host_port() const {
    return "127.0.0.1:" + std::to_string(port_);
  }

 private:
  void Run() {
    while (!stopping_.load()) {
      auto conn = listener_.Accept();
      if (!conn.ok()) return;
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        conn_ = std::move(conn).ValueOrDie();
      }
      (void)conn_.SetTimeouts(2000);
      ServeOne();
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_.ShutdownBoth();  // a refused answer is a closed connection
      conn_.Close();
    }
  }

  void ServeOne() {
    while (!stopping_.load()) {
      bool clean_eof = false;
      auto frame = net::ReadFrame(&conn_, &clean_eof);
      if (!frame.ok()) return;
      if (frame.value().type == net::kGetDir) {
        std::vector<uint8_t> body;
        PutU64LE(dir_off_, &body);
        body.insert(body.end(), dir_region_.begin(), dir_region_.end());
        if (fault_ == Fault::kCorruptDirectory) {
          body.resize(body.size() / 2);  // truncated directory
        }
        (void)net::WriteFrame(&conn_, net::kDir, SpanOf(body));
        continue;
      }
      if (frame.value().type != net::kGetShard ||
          frame.value().body.size() != 4) {
        return;
      }
      uint32_t index = 0;
      for (int i = 0; i < 4; ++i) {
        index |= static_cast<uint32_t>(frame.value().body[i]) << (8 * i);
      }
      if (!Misbehave(index)) return;
    }
  }

  // One faulty GetShard answer; false = close the connection.
  bool Misbehave(uint32_t index) {
    std::vector<uint8_t> body;
    PutU32LE(index, &body);
    if (index < rows_.size() && rows_[index].length > 0) {
      ByteSpan blob = SpanOf(container_)
                          .subspan(rows_[index].offset, rows_[index].length);
      body.insert(body.end(), blob.begin(), blob.end());
    }
    switch (fault_) {
      case Fault::kNone:
      case Fault::kCorruptDirectory:
        return net::WriteFrame(&conn_, net::kShard, SpanOf(body)).ok();
      case Fault::kTruncatedFrame: {
        auto bytes = net::EncodeFrame(net::kShard, SpanOf(body));
        bytes.resize(bytes.size() / 2);
        (void)conn_.SendAll(SpanOf(bytes));
        return false;
      }
      case Fault::kBitFlippedPayload:
        // Flip one payload bit, then frame normally: the frame
        // checksum is consistent with the flipped bytes, so only the
        // directory's payload checksum can catch it.
        body[4 + body.size() / 2] ^= 0x10;
        return net::WriteFrame(&conn_, net::kShard, SpanOf(body)).ok();
      case Fault::kWrongShardId: {
        std::vector<uint8_t> wrong;
        PutU32LE(index + 1, &wrong);
        wrong.insert(wrong.end(), body.begin() + 4, body.end());
        return net::WriteFrame(&conn_, net::kShard, SpanOf(wrong)).ok();
      }
      case Fault::kPrematureClose:
        return false;
      case Fault::kStalledWrite:
        // Far past the client's 300 ms timeout; bounded so teardown
        // stays fast.
        for (int i = 0; i < 20 && !stopping_.load(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        return net::WriteFrame(&conn_, net::kShard, SpanOf(body)).ok();
      case Fault::kGarbageFrame: {
        std::vector<uint8_t> garbage(32, 0x5A);
        (void)conn_.SendAll(SpanOf(garbage));
        return false;
      }
      case Fault::kBadFrameChecksum: {
        auto bytes = net::EncodeFrame(net::kShard, SpanOf(body));
        bytes.back() ^= 0xFF;
        (void)conn_.SendAll(SpanOf(bytes));
        return false;
      }
    }
    return false;
  }

  std::vector<uint8_t> container_;
  Fault fault_;
  uint64_t dir_off_ = 0;
  ByteSpan dir_region_;
  std::vector<shard::ShardDirEntry> rows_;
  uint16_t port_ = 0;
  Socket listener_;
  std::mutex conn_mu_;  // guards moves/closes of conn_, not its IO
  Socket conn_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

class NetFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    container_ = new std::vector<uint8_t>(MakeContainer());
  }
  static void TearDownTestSuite() {
    delete container_;
    container_ = nullptr;
  }
  static std::vector<uint8_t>* container_;
};

std::vector<uint8_t>* NetFaultTest::container_ = nullptr;

// Expects OpenRemote to succeed and the first query to fail with a
// clean, descriptive Status of an expected code.
void ExpectQueryFailsClosed(const std::string& host_port,
                            std::initializer_list<StatusCode> codes) {
  net::RemoteShardSource::Options options;
  options.io_timeout_ms = 300;
  auto rep = net::OpenRemoteContainer(host_port, options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto out = rep.value()->OutNeighbors(0);
  ASSERT_FALSE(out.ok()) << "query must fail closed";
  bool expected = false;
  for (StatusCode code : codes) {
    if (out.status().code() == code) expected = true;
  }
  EXPECT_TRUE(expected) << out.status().ToString();
  EXPECT_FALSE(out.status().message().empty());
  // The failure must not poison the error contract: a second query is
  // still a clean Status (fail-fast on the broken connection or a
  // fresh failure), never a crash.
  auto again = rep.value()->OutNeighbors(0);
  EXPECT_FALSE(again.ok());
}

TEST_F(NetFaultTest, ShimBaselineBehaves) {
  MisbehavingServer server(*container_, Fault::kNone);
  auto rep = net::OpenRemoteContainer(server.host_port());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto out = rep.value()->OutNeighbors(0);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
}

TEST_F(NetFaultTest, TruncatedFrameFailsClosed) {
  MisbehavingServer server(*container_, Fault::kTruncatedFrame);
  ExpectQueryFailsClosed(server.host_port(), {StatusCode::kUnavailable});
}

TEST_F(NetFaultTest, BitFlippedPayloadFailsChecksum) {
  MisbehavingServer server(*container_, Fault::kBitFlippedPayload);
  net::RemoteShardSource::Options options;
  options.io_timeout_ms = 2000;
  auto rep = net::OpenRemoteContainer(server.host_port(), options);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto out = rep.value()->OutNeighbors(0);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
  EXPECT_NE(out.status().message().find("checksum"), std::string::npos)
      << out.status().ToString();
}

TEST_F(NetFaultTest, WrongShardIdIsCorruption) {
  MisbehavingServer server(*container_, Fault::kWrongShardId);
  ExpectQueryFailsClosed(server.host_port(), {StatusCode::kCorruption});
}

TEST_F(NetFaultTest, PrematureCloseIsUnavailable) {
  MisbehavingServer server(*container_, Fault::kPrematureClose);
  ExpectQueryFailsClosed(server.host_port(), {StatusCode::kUnavailable});
}

TEST_F(NetFaultTest, StalledWriteTimesOutInsteadOfHanging) {
  MisbehavingServer server(*container_, Fault::kStalledWrite);
  auto start = std::chrono::steady_clock::now();
  ExpectQueryFailsClosed(server.host_port(), {StatusCode::kUnavailable});
  auto elapsed = std::chrono::steady_clock::now() - start;
  // 300 ms timeout, generous margin for loaded runners — the point is
  // "bounded", not "fast".
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 10.0);
}

TEST_F(NetFaultTest, GarbageFrameIsCorruption) {
  MisbehavingServer server(*container_, Fault::kGarbageFrame);
  ExpectQueryFailsClosed(
      server.host_port(),
      {StatusCode::kCorruption, StatusCode::kUnavailable});
}

TEST_F(NetFaultTest, CorruptedFrameChecksumIsCorruption) {
  MisbehavingServer server(*container_, Fault::kBadFrameChecksum);
  ExpectQueryFailsClosed(server.host_port(), {StatusCode::kCorruption});
}

TEST_F(NetFaultTest, CorruptDirectoryFailsAtConnect) {
  MisbehavingServer server(*container_, Fault::kCorruptDirectory);
  net::RemoteShardSource::Options options;
  options.io_timeout_ms = 2000;
  auto rep = net::OpenRemoteContainer(server.host_port(), options);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kCorruption);
}

// --- attacks against the real server -------------------------------------

TEST_F(NetFaultTest, RealServerSurvivesGarbageAndKeepsServing) {
  auto server = net::ShardServer::Serve(nullptr, SpanOf(*container_));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Garbage connection: raw non-frame bytes.
  {
    auto conn = Socket::ConnectTcp("127.0.0.1", server.value()->port(),
                                   2000);
    ASSERT_TRUE(conn.ok());
    std::vector<uint8_t> garbage(64, 0xFF);
    ASSERT_TRUE(conn.value().SendAll(SpanOf(garbage)).ok());
  }
  // Out-of-range and edgeless shard requests: error frames, and the
  // connection stays usable afterwards.
  {
    auto conn = Socket::ConnectTcp("127.0.0.1", server.value()->port(),
                                   2000);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.value().SetTimeouts(2000).ok());
    std::vector<uint8_t> body;
    PutU32LE(999, &body);
    ASSERT_TRUE(
        net::WriteFrame(&conn.value(), net::kGetShard, SpanOf(body)).ok());
    auto reply = net::ReadFrame(&conn.value());
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply.value().type, net::kError);
    Status decoded = net::DecodeErrorBody(SpanOf(reply.value().body));
    EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);
    // Same connection, now a valid request.
    ASSERT_TRUE(
        net::WriteFrame(&conn.value(), net::kGetDir, ByteSpan{}).ok());
    auto dir = net::ReadFrame(&conn.value());
    ASSERT_TRUE(dir.ok());
    EXPECT_EQ(dir.value().type, net::kDir);
  }
  // A well-behaved client still gets correct answers.
  auto rep = net::OpenRemoteContainer(server.value()->host_port());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep.value()->OutNeighbors(0).ok());
  EXPECT_GT(server.value()->stats().errors, 0u);
}

TEST_F(NetFaultTest, StopUnblocksSilentConnections) {
  auto server = net::ShardServer::Serve(nullptr, SpanOf(*container_));
  ASSERT_TRUE(server.ok());
  // A client that connects and says nothing must not wedge Stop.
  auto conn = Socket::ConnectTcp("127.0.0.1", server.value()->port(), 2000);
  ASSERT_TRUE(conn.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto start = std::chrono::steady_clock::now();
  server.value()->Stop();
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 5.0);
}

}  // namespace
}  // namespace grepair
