// Fault injection for the shard-serving path: a misbehaving-server
// shim speaking GRNF v2 feeds the client every class of wire-level
// lie — truncated frames, bit-flipped payloads, wrong shard ids,
// premature closes, stalled writes, garbage frames, corrupted frame
// checksums — and every one must surface as a clean Status
// (kCorruption or kUnavailable), never a crash, hang, or silently
// wrong answer. The real server is also attacked from the client side
// (garbage bytes, out-of-range requests, silent connections, a
// down-version GRNF v1 peer) and must keep serving well-behaved
// peers. Runs under the ASan/UBSan and TSan CI legs.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/api/grepair_api.h"
#include "src/net/frame.h"
#include "src/serve/pool.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"

namespace grepair {
namespace {

// A small real container to lie about: 2 data shards + cut shard.
std::vector<uint8_t> MakeContainer() {
  GeneratedGraph gg = BarabasiAlbert(60, 3, 53);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", "2");
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  EXPECT_TRUE(rep.ok()) << rep.status().ToString();
  return dynamic_cast<shard::ShardedRep*>(rep.value().get())->SerializeV2();
}

enum class Fault {
  kNone,               // behave (baseline for the shim itself)
  kTruncatedFrame,     // half a shard frame, then close
  kBitFlippedPayload,  // well-framed payload with one flipped bit
  kWrongShardId,       // echoes index+1
  kPrematureClose,     // close instead of answering GetShard2
  kStalledWrite,       // sleep past the client's timeout
  kGarbageFrame,       // non-frame bytes
  kBadFrameChecksum,   // valid frame, last checksum byte flipped
  kCorruptDirectory,   // truncated directory at connect time
};

// Speaks just enough GRNF v2 to get a real client through the
// kHello/kOpenCorpus handshake, then applies `fault` to kGetShard2
// (or, for kCorruptDirectory, to the kCorpusDir reply).
// Single-connection, joins on destruction.
class MisbehavingServer {
 public:
  MisbehavingServer(std::vector<uint8_t> container, Fault fault)
      : container_(std::move(container)), fault_(fault) {
    uint64_t dir_off = 0;
    auto region =
        shard::LocateV2DirectoryRegion(SpanOf(container_), &dir_off);
    EXPECT_TRUE(region.ok());
    dir_off_ = dir_off;
    dir_region_ = region.value();
    auto rows = shard::ParseV2Directory(dir_region_, dir_off_);
    EXPECT_TRUE(rows.ok());
    rows_ = std::move(rows).ValueOrDie().rows;
    auto listener = Socket::ListenTcp("127.0.0.1", 0, &port_);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    listener_ = std::move(listener).ValueOrDie();
    thread_ = std::thread([this] { Run(); });
  }

  ~MisbehavingServer() {
    stopping_.store(true);
    // Shutdown only: Close() writes the fd and would race the server
    // thread's Accept; descriptors close with the Socket members
    // after the join.
    listener_.ShutdownBoth();
    {
      // conn_ is moved into by the server thread between connections;
      // the shutdown that unblocks its recv must not race that.
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_.ShutdownBoth();
    }
    if (thread_.joinable()) thread_.join();
  }

  std::string host_port() const {
    return "127.0.0.1:" + std::to_string(port_);
  }

 private:
  void Run() {
    while (!stopping_.load()) {
      auto conn = listener_.Accept();
      if (!conn.ok()) return;
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        conn_ = std::move(conn).ValueOrDie();
      }
      (void)conn_.SetTimeouts(2000);
      ServeOne();
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_.ShutdownBoth();  // a refused answer is a closed connection
      conn_.Close();
    }
  }

  void ServeOne() {
    while (!stopping_.load()) {
      bool clean_eof = false;
      auto frame = net::ReadFrame(&conn_, &clean_eof);
      if (!frame.ok()) return;
      if (frame.value().type == net::kHello) {
        std::vector<uint8_t> body;
        PutU32LE(net::kProtoV2, &body);
        PutU32LE(1, &body);  // one corpus
        (void)net::WriteFrame(&conn_, net::kHelloOk, SpanOf(body));
        continue;
      }
      ByteSource src(SpanOf(frame.value().body), "shim request body");
      uint64_t req_id = 0;
      if (!src.ReadU64LE(&req_id).ok()) return;
      if (frame.value().type == net::kOpenCorpus) {
        std::vector<uint8_t> body;
        PutU64LE(req_id, &body);
        PutU32LE(0, &body);  // corpus id
        PutU64LE(dir_off_, &body);
        body.insert(body.end(), dir_region_.begin(), dir_region_.end());
        if (fault_ == Fault::kCorruptDirectory) {
          body.resize(body.size() / 2);  // truncated directory
        }
        (void)net::WriteFrame(&conn_, net::kCorpusDir, SpanOf(body));
        continue;
      }
      if (frame.value().type != net::kGetShard2) return;
      uint32_t corpus_id = 0;
      uint32_t index = 0;
      if (!src.ReadU32LE(&corpus_id).ok() || !src.ReadU32LE(&index).ok()) {
        return;
      }
      if (!Misbehave(req_id, corpus_id, index)) return;
    }
  }

  // One faulty kGetShard2 answer; false = close the connection.
  bool Misbehave(uint64_t req_id, uint32_t corpus_id, uint32_t index) {
    std::vector<uint8_t> body;
    PutU64LE(req_id, &body);
    PutU32LE(corpus_id, &body);
    PutU32LE(index, &body);
    const size_t payload_at = body.size();
    if (index < rows_.size() && rows_[index].length > 0) {
      ByteSpan blob = SpanOf(container_)
                          .subspan(rows_[index].offset, rows_[index].length);
      body.insert(body.end(), blob.begin(), blob.end());
    }
    switch (fault_) {
      case Fault::kNone:
      case Fault::kCorruptDirectory:
        return net::WriteFrame(&conn_, net::kShard2, SpanOf(body)).ok();
      case Fault::kTruncatedFrame: {
        auto bytes = net::EncodeFrame(net::kShard2, SpanOf(body));
        bytes.resize(bytes.size() / 2);
        (void)conn_.SendAll(SpanOf(bytes));
        return false;
      }
      case Fault::kBitFlippedPayload:
        // Flip one payload bit, then frame normally: the frame
        // checksum is consistent with the flipped bytes, so only the
        // directory's payload checksum can catch it.
        body[payload_at + (body.size() - payload_at) / 2] ^= 0x10;
        return net::WriteFrame(&conn_, net::kShard2, SpanOf(body)).ok();
      case Fault::kWrongShardId: {
        std::vector<uint8_t> wrong;
        PutU64LE(req_id, &wrong);
        PutU32LE(corpus_id, &wrong);
        PutU32LE(index + 1, &wrong);
        wrong.insert(wrong.end(), body.begin() + payload_at, body.end());
        return net::WriteFrame(&conn_, net::kShard2, SpanOf(wrong)).ok();
      }
      case Fault::kPrematureClose:
        return false;
      case Fault::kStalledWrite:
        // Far past the client's 300 ms timeout; bounded so teardown
        // stays fast.
        for (int i = 0; i < 20 && !stopping_.load(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        return net::WriteFrame(&conn_, net::kShard2, SpanOf(body)).ok();
      case Fault::kGarbageFrame: {
        std::vector<uint8_t> garbage(32, 0x5A);
        (void)conn_.SendAll(SpanOf(garbage));
        return false;
      }
      case Fault::kBadFrameChecksum: {
        auto bytes = net::EncodeFrame(net::kShard2, SpanOf(body));
        bytes.back() ^= 0xFF;
        (void)conn_.SendAll(SpanOf(bytes));
        return false;
      }
    }
    return false;
  }

  std::vector<uint8_t> container_;
  Fault fault_;
  uint64_t dir_off_ = 0;
  ByteSpan dir_region_;
  std::vector<shard::ShardDirEntry> rows_;
  uint16_t port_ = 0;
  Socket listener_;
  std::mutex conn_mu_;  // guards moves/closes of conn_, not its IO
  Socket conn_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

class NetFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    container_ = new std::vector<uint8_t>(MakeContainer());
  }
  static void TearDownTestSuite() {
    delete container_;
    container_ = nullptr;
  }
  static std::vector<uint8_t>* container_;
};

std::vector<uint8_t>* NetFaultTest::container_ = nullptr;

// The shim serves one connection at a time, so the pool must not dial
// extra slots mid-test.
serve::OpenOptions OnePoolSlot(int io_timeout_ms) {
  serve::OpenOptions options;
  options.pool_size = 1;
  options.io_timeout_ms = io_timeout_ms;
  return options;
}

// Expects OpenRemote to succeed and the first query to fail with a
// clean, descriptive Status of an expected code.
void ExpectQueryFailsClosed(const std::string& host_port,
                            std::initializer_list<StatusCode> codes) {
  auto rep = serve::OpenRemoteContainer(host_port, OnePoolSlot(300));
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto out = rep.value()->OutNeighbors(0);
  ASSERT_FALSE(out.ok()) << "query must fail closed";
  bool expected = false;
  for (StatusCode code : codes) {
    if (out.status().code() == code) expected = true;
  }
  EXPECT_TRUE(expected) << out.status().ToString();
  EXPECT_FALSE(out.status().message().empty());
  // The failure must not poison the error contract: a second query is
  // still a clean Status (fail-fast on the broken connection or a
  // fresh failure), never a crash.
  auto again = rep.value()->OutNeighbors(0);
  EXPECT_FALSE(again.ok());
}

TEST_F(NetFaultTest, ShimBaselineBehaves) {
  MisbehavingServer server(*container_, Fault::kNone);
  auto rep = serve::OpenRemoteContainer(server.host_port(),
                                        OnePoolSlot(2000));
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto out = rep.value()->OutNeighbors(0);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
}

TEST_F(NetFaultTest, TruncatedFrameFailsClosed) {
  MisbehavingServer server(*container_, Fault::kTruncatedFrame);
  ExpectQueryFailsClosed(server.host_port(), {StatusCode::kUnavailable});
}

TEST_F(NetFaultTest, BitFlippedPayloadFailsChecksum) {
  MisbehavingServer server(*container_, Fault::kBitFlippedPayload);
  auto rep = serve::OpenRemoteContainer(server.host_port(),
                                        OnePoolSlot(2000));
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto out = rep.value()->OutNeighbors(0);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
  EXPECT_NE(out.status().message().find("checksum"), std::string::npos)
      << out.status().ToString();
}

TEST_F(NetFaultTest, WrongShardIdIsCorruption) {
  MisbehavingServer server(*container_, Fault::kWrongShardId);
  ExpectQueryFailsClosed(server.host_port(), {StatusCode::kCorruption});
}

TEST_F(NetFaultTest, PrematureCloseIsUnavailable) {
  MisbehavingServer server(*container_, Fault::kPrematureClose);
  ExpectQueryFailsClosed(server.host_port(), {StatusCode::kUnavailable});
}

TEST_F(NetFaultTest, StalledWriteTimesOutInsteadOfHanging) {
  MisbehavingServer server(*container_, Fault::kStalledWrite);
  auto start = std::chrono::steady_clock::now();
  ExpectQueryFailsClosed(server.host_port(), {StatusCode::kUnavailable});
  auto elapsed = std::chrono::steady_clock::now() - start;
  // 300 ms timeout, generous margin for loaded runners — the point is
  // "bounded", not "fast".
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 10.0);
}

TEST_F(NetFaultTest, GarbageFrameIsCorruption) {
  MisbehavingServer server(*container_, Fault::kGarbageFrame);
  ExpectQueryFailsClosed(
      server.host_port(),
      {StatusCode::kCorruption, StatusCode::kUnavailable});
}

TEST_F(NetFaultTest, CorruptedFrameChecksumIsCorruption) {
  MisbehavingServer server(*container_, Fault::kBadFrameChecksum);
  ExpectQueryFailsClosed(server.host_port(), {StatusCode::kCorruption});
}

TEST_F(NetFaultTest, CorruptDirectoryFailsAtConnect) {
  MisbehavingServer server(*container_, Fault::kCorruptDirectory);
  auto rep = serve::OpenRemoteContainer(server.host_port(),
                                        OnePoolSlot(2000));
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kCorruption);
}

// --- attacks against the real server -------------------------------------

std::unique_ptr<serve::ShardServer> StartRealServer(
    const std::vector<uint8_t>& container) {
  serve::CorpusRegistry registry;
  Status added = registry.AddBytes("g", SpanOf(container));
  EXPECT_TRUE(added.ok()) << added.ToString();
  auto server = serve::ShardServer::Start(std::move(registry));
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).ValueOrDie();
}

// Dials the real server and completes the v2 handshake.
Socket HandshakedConn(const serve::ShardServer& server) {
  auto conn = Socket::ConnectTcp("127.0.0.1", server.port(), 2000);
  EXPECT_TRUE(conn.ok());
  EXPECT_TRUE(conn.value().SetTimeouts(2000).ok());
  std::vector<uint8_t> hello;
  PutU32LE(net::kProtoV2, &hello);
  EXPECT_TRUE(
      net::WriteFrame(&conn.value(), net::kHello, SpanOf(hello)).ok());
  auto reply = net::ReadFrame(&conn.value());
  EXPECT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().type, net::kHelloOk);
  return std::move(conn).ValueOrDie();
}

TEST_F(NetFaultTest, RealServerSurvivesGarbageAndKeepsServing) {
  auto server = StartRealServer(*container_);

  // Garbage connection: raw non-frame bytes.
  {
    auto conn = Socket::ConnectTcp("127.0.0.1", server->port(), 2000);
    ASSERT_TRUE(conn.ok());
    std::vector<uint8_t> garbage(64, 0xFF);
    ASSERT_TRUE(conn.value().SendAll(SpanOf(garbage)).ok());
  }
  // Out-of-range shard requests: tagged error frames, and the
  // connection stays usable afterwards.
  {
    Socket conn = HandshakedConn(*server);
    std::vector<uint8_t> body;
    PutU64LE(7, &body);  // req_id
    PutU32LE(0, &body);  // corpus id
    PutU32LE(999, &body);
    ASSERT_TRUE(
        net::WriteFrame(&conn, net::kGetShard2, SpanOf(body)).ok());
    auto reply = net::ReadFrame(&conn);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply.value().type, net::kError2);
    uint64_t req_id = 0;
    Status decoded =
        net::DecodeErrorBody2(SpanOf(reply.value().body), &req_id);
    EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(req_id, 7u);
    // Same connection, now a valid request.
    std::vector<uint8_t> open;
    PutU64LE(8, &open);
    open.push_back(0);  // empty name: the sole corpus
    ASSERT_TRUE(
        net::WriteFrame(&conn, net::kOpenCorpus, SpanOf(open)).ok());
    auto dir = net::ReadFrame(&conn);
    ASSERT_TRUE(dir.ok());
    EXPECT_EQ(dir.value().type, net::kCorpusDir);
  }
  // A well-behaved client still gets correct answers.
  auto rep = serve::OpenRemoteContainer(server->host_port());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep.value()->OutNeighbors(0).ok());
  EXPECT_GT(server->stats().errors, 0u);
}

TEST_F(NetFaultTest, V2ServerRejectsV1ClientCleanly) {
  auto server = StartRealServer(*container_);
  // A PR 5-era client skips the handshake and leads with kGetDir. The
  // server must answer in the v1 dialect (the only one the old client
  // decodes) with a readable upgrade error — not wire corruption, not
  // a dropped connection.
  auto conn = Socket::ConnectTcp("127.0.0.1", server->port(), 2000);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.value().SetTimeouts(2000).ok());
  ASSERT_TRUE(net::WriteFrame(&conn.value(), net::kGetDir, ByteSpan{}).ok());
  auto reply = net::ReadFrame(&conn.value());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().type, net::kError);
  ASSERT_EQ(reply.value().version, net::kProtoV1);
  Status decoded = net::DecodeErrorBody(SpanOf(reply.value().body));
  EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.message().find("GRNF v2"), std::string::npos)
      << decoded.ToString();
  // The stream stays in sync: a v1 kGetShard on the same connection
  // still gets a clean v1 error, not garbage.
  std::vector<uint8_t> body;
  PutU32LE(0, &body);
  ASSERT_TRUE(
      net::WriteFrame(&conn.value(), net::kGetShard, SpanOf(body)).ok());
  auto second = net::ReadFrame(&conn.value());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().type, net::kError);

  // An explicit down-version handshake is refused just as cleanly.
  auto v1_hello = Socket::ConnectTcp("127.0.0.1", server->port(), 2000);
  ASSERT_TRUE(v1_hello.ok());
  ASSERT_TRUE(v1_hello.value().SetTimeouts(2000).ok());
  std::vector<uint8_t> hello;
  PutU32LE(1, &hello);  // "I speak at most v1"
  ASSERT_TRUE(
      net::WriteFrame(&v1_hello.value(), net::kHello, SpanOf(hello)).ok());
  auto refused = net::ReadFrame(&v1_hello.value());
  ASSERT_TRUE(refused.ok()) << refused.status().ToString();
  EXPECT_EQ(refused.value().type, net::kError);
  EXPECT_EQ(net::DecodeErrorBody(SpanOf(refused.value().body)).code(),
            StatusCode::kInvalidArgument);

  // Real clients are unaffected throughout.
  auto rep = serve::OpenRemoteContainer(server->host_port());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep.value()->OutNeighbors(0).ok());
}

// Address parsing regressions: bracketed IPv6 literals must survive
// both layers — ParseHostPort (the dial path) and SplitTarget (the
// target/corpus split used by OpenRemote and --replica).
TEST(AddressParsing, BracketedIpv6HostPort) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseHostPort("[::1]:9000", &host, &port).ok());
  EXPECT_EQ(host, "::1");
  EXPECT_EQ(port, 9000);

  ASSERT_TRUE(ParseHostPort("[2001:db8::42]:443", &host, &port).ok());
  EXPECT_EQ(host, "2001:db8::42");
  EXPECT_EQ(port, 443);

  // Unbracketed IPv6 keeps the historical reading: everything before
  // the last colon is the host.
  ASSERT_TRUE(ParseHostPort("::1:9000", &host, &port).ok());
  EXPECT_EQ(host, "::1");
  EXPECT_EQ(port, 9000);
}

TEST(AddressParsing, MalformedBracketSpecsAreRejected) {
  std::string host;
  uint16_t port = 0;
  const char* bad[] = {
      "[]:9000",       // empty bracket pair: no host to dial
      "[::1]",         // no port
      "[::1]:",        // empty port
      "[::1]9000",     // missing separator colon
      "[::1:9000",     // unterminated bracket
      "[::1]:0",       // port 0
      "[::1]:99999",   // port out of range
      "[::1]:-1",      // negative port
  };
  for (const char* spec : bad) {
    EXPECT_EQ(ParseHostPort(spec, &host, &port).code(),
              StatusCode::kInvalidArgument)
        << "accepted '" << spec << "'";
  }
}

TEST(AddressParsing, SplitTargetKeepsIpv6Brackets) {
  std::string host_port, corpus;
  ASSERT_TRUE(
      serve::SplitTarget("[::1]:9000/wikidata", &host_port, &corpus).ok());
  EXPECT_EQ(host_port, "[::1]:9000");
  EXPECT_EQ(corpus, "wikidata");

  ASSERT_TRUE(serve::SplitTarget("[::1]:9000", &host_port, &corpus).ok());
  EXPECT_EQ(host_port, "[::1]:9000");
  EXPECT_EQ(corpus, "");

  // The host:port half that SplitTarget hands back must itself parse.
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseHostPort(host_port, &host, &port).ok());
  EXPECT_EQ(host, "::1");
  EXPECT_EQ(port, 9000);
}

TEST_F(NetFaultTest, StopUnblocksSilentConnections) {
  auto server = StartRealServer(*container_);
  // A client that connects and says nothing must not wedge Stop.
  auto conn = Socket::ConnectTcp("127.0.0.1", server->port(), 2000);
  ASSERT_TRUE(conn.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto start = std::chrono::steady_clock::now();
  server->Stop();
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 5.0);
}

}  // namespace
}  // namespace grepair
