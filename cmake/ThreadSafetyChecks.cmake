# Configure-time proof that the thread-safety annotations in
# src/util/sync.h are live, not decorative: under Clang, two
# deliberately racy TUs (tests/negative_compile/) must FAIL to compile
# with -Werror=thread-safety, and a correctly locked control TU must
# compile. A toolchain or macro regression that silently turns the
# analysis off (annotations no-op, flag dropped, include broken) trips
# the control or lets a violation through, and the configure aborts.
#
# Under non-Clang compilers the annotations expand to nothing and there
# is nothing to prove; the checks are skipped.

function(grepair_check_thread_safety)
  if(NOT CMAKE_CXX_COMPILER_ID STREQUAL "Clang")
    message(STATUS "Thread-safety negative-compile checks: skipped "
                   "(${CMAKE_CXX_COMPILER_ID} has no -Wthread-safety)")
    return()
  endif()

  set(ts_dir ${CMAKE_SOURCE_DIR}/tests/negative_compile)
  set(ts_flags -Wthread-safety -Werror=thread-safety)

  # The control proves the harness itself works (include paths, C++17,
  # the analysis flag): correctly locked code must compile.
  try_compile(ts_control_ok ${CMAKE_BINARY_DIR}/ts_checks/control
    ${ts_dir}/positive_control.cc
    COMPILE_DEFINITIONS "${ts_flags}"
    CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}"
    LINK_LIBRARIES Threads::Threads
    CXX_STANDARD 17
    OUTPUT_VARIABLE ts_control_out)
  if(NOT ts_control_ok)
    message(FATAL_ERROR "Thread-safety control TU failed to compile — the "
      "negative-compile harness is broken, not the annotations:\n"
      "${ts_control_out}")
  endif()

  # Each violation TU must be rejected, and rejected by the analysis
  # (the diagnostic names -Wthread-safety), not by some unrelated
  # compile error that would make the check vacuous.
  foreach(violation guarded_by_violation missing_requires)
    try_compile(ts_${violation}_ok ${CMAKE_BINARY_DIR}/ts_checks/${violation}
      ${ts_dir}/${violation}.cc
      COMPILE_DEFINITIONS "${ts_flags}"
      CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}"
      LINK_LIBRARIES Threads::Threads
      CXX_STANDARD 17
      OUTPUT_VARIABLE ts_${violation}_out)
    if(ts_${violation}_ok)
      message(FATAL_ERROR "tests/negative_compile/${violation}.cc compiled "
        "under -Werror=thread-safety — the analysis is not rejecting "
        "violations (annotation macros disabled?)")
    endif()
    if(NOT ts_${violation}_out MATCHES "thread-safety")
      message(FATAL_ERROR "tests/negative_compile/${violation}.cc failed to "
        "compile for a reason other than the thread-safety analysis:\n"
        "${ts_${violation}_out}")
    endif()
  endforeach()

  message(STATUS "Thread-safety negative-compile checks: control compiles, "
                 "2/2 violations rejected")
endfunction()
